/**
 * @file
 * Distributed shared-L2 slice controller with embedded ACKwise
 * directory (Table 1).
 *
 * One slice per tile; lines are home-interleaved across slices. The
 * controller composes transaction timing arithmetically: directory
 * lookup, owner downgrades, invalidation/ack rounds, DRAM fetches and
 * NoC transfers all advance a single timestamp while claiming
 * bandwidth on the shared resources they cross.
 */
#ifndef IMPSIM_SIM_L2_CONTROLLER_HPP
#define IMPSIM_SIM_L2_CONTROLLER_HPP

#include <cstdint>
#include <vector>

#include "cache/sector_cache.hpp"
#include "coherence/directory.hpp"
#include "common/config.hpp"
#include "common/stats.hpp"
#include "dram/dram.hpp"
#include "noc/mesh.hpp"

namespace impsim {

/**
 * L1-side operations the L2 needs for coherence (implemented by
 * L1Controller). Returned masks are dirty sectors at L1 granularity.
 */
class L1Backdoor
{
  public:
    virtual ~L1Backdoor() = default;

    /** Invalidates the line; returns its dirty mask (0 if absent). */
    virtual std::uint32_t backInvalidate(Addr line_addr) = 0;

    /** Downgrades E/M to S; returns the dirty mask (now clean). */
    virtual std::uint32_t downgrade(Addr line_addr) = 0;
};

/** Completed fill description returned to the requesting L1. */
struct L2FillResult
{
    Tick ready = 0;               ///< Data leaves the slice then.
    std::uint32_t payloadBytes = 0; ///< Response data size.
    bool exclusiveGranted = false;  ///< Requester may install E/M.
};

/** One L2 slice + directory. */
class L2Controller
{
  public:
    L2Controller(CoreId tile, const SystemConfig &cfg, MeshNoc &noc,
                 DramModel &dram, const McMap &mc_map);

    /** Wires the per-core L1 backdoors (after all L1s exist). */
    void connectL1s(std::vector<L1Backdoor *> l1s);

    /**
     * Handles a fill request arriving at @p when.
     * @param l1_mask  requested sectors at L1 granularity (full-line
     *                 mask when partial accessing is off)
     * @param exclusive GetX (writes / exclusive prefetches)
     */
    L2FillResult handleFill(Addr line_addr, std::uint32_t l1_mask,
                            bool exclusive, CoreId requester, Tick when);

    /** Dirty L1 eviction data arriving at @p when. */
    void handleWriteback(Addr line_addr, std::uint32_t l1_dirty_mask,
                         CoreId from, Tick when);

    /** Clean (silent) L1 eviction: directory state only. */
    void noteL1Evict(Addr line_addr, CoreId from);

    Directory &directory() { return dir_; }
    CacheStats &stats() { return stats_; }
    const CacheStats &stats() const { return stats_; }
    SectorCache &cache() { return cache_; }

  private:
    /** Converts an L1 sector mask to this slice's sector mask. */
    std::uint32_t toL2Mask(std::uint32_t l1_mask) const;

    /** Fetches @p l2_mask sectors from DRAM; returns data-ready tick. */
    Tick dramFetch(Addr line_addr, std::uint32_t l2_mask, Tick when);

    /** Evicts @p frame (writeback + back-invalidation). */
    void evictFrame(CacheLine &frame, Tick when);

    CoreId tile_;
    const SystemConfig &cfg_;
    MeshNoc &noc_;
    DramModel &dram_;
    const McMap &mcMap_;
    SectorCache cache_;
    Directory dir_;
    std::vector<L1Backdoor *> l1s_;
    CacheStats stats_;
};

} // namespace impsim

#endif // IMPSIM_SIM_L2_CONTROLLER_HPP
