/**
 * @file
 * Distributed shared-L2 slice controller with embedded ACKwise
 * directory (Table 1).
 *
 * One slice per tile; lines are home-interleaved across slices. The
 * controller composes transaction timing arithmetically: directory
 * lookup, owner downgrades, invalidation/ack rounds, DRAM fetches and
 * NoC transfers all advance a single timestamp while claiming
 * bandwidth on the shared resources they cross.
 */
#ifndef IMPSIM_SIM_L2_CONTROLLER_HPP
#define IMPSIM_SIM_L2_CONTROLLER_HPP

#include <cstdint>
#include <memory>
#include "common/flat_map.hpp"
#include <vector>

#include "cache/sector_cache.hpp"
#include "coherence/directory.hpp"
#include "common/config.hpp"
#include "common/event_queue.hpp"
#include "common/func_mem.hpp"
#include "common/stats.hpp"
#include "core/prefetcher.hpp"
#include "dram/dram.hpp"
#include "noc/mesh.hpp"

namespace impsim {

/**
 * L1-side operations the L2 needs for coherence (implemented by
 * L1Controller). Returned masks are dirty sectors at L1 granularity.
 */
class L1Backdoor
{
  public:
    virtual ~L1Backdoor() = default;

    /** Invalidates the line; returns its dirty mask (0 if absent). */
    virtual std::uint32_t backInvalidate(Addr line_addr) = 0;

    /** Downgrades E/M to S; returns the dirty mask (now clean). */
    virtual std::uint32_t downgrade(Addr line_addr) = 0;
};

/** Completed fill description returned to the requesting L1. */
struct L2FillResult
{
    Tick ready = 0;               ///< Data leaves the slice then.
    std::uint32_t payloadBytes = 0; ///< Response data size.
    bool exclusiveGranted = false;  ///< Requester may install E/M.
};

/**
 * Demand-access context an L1 forwards with a fill so the L2-level
 * prefetch engine can train on the architectural access behind it.
 */
struct L2DemandHint
{
    Addr addr = 0;         ///< Exact element address (not line-aligned).
    std::uint32_t pc = 0;  ///< Static instruction site.
    std::uint8_t size = 4; ///< Access size in bytes.
    bool write = false;
};

/**
 * One L2 slice + directory; also the PrefetchHost for the tile's
 * L2-attached prefetch engine.
 *
 * The engine at tile t trains on the L1-miss stream of core t (the
 * traffic visible at the tile's L1-to-NoC interface): the home slice
 * serving a demand fill notifies the requester's tile, which keeps
 * PC-keyed training coherent even though lines are home-interleaved
 * across slices. Issued prefetches are routed to the target line's
 * home slice and installed there, so later demand fills hit.
 */
class L2Controller final : public PrefetchHost
{
  public:
    L2Controller(CoreId tile, const SystemConfig &cfg, EventQueue &eq,
                 MeshNoc &noc, DramModel &dram, const McMap &mc_map,
                 const FuncMem &mem);

    /** Wires the per-core L1 backdoors (after all L1s exist). */
    void connectL1s(std::vector<L1Backdoor *> l1s);

    /** Wires the slice peers (after all L2s exist); enables the
     *  prefetch paths, which must reach a line's home slice. */
    void connectPeers(std::vector<L2Controller *> l2s);

    /** Attaches (or replaces) this tile's L2-level prefetcher. */
    void attachPrefetcher(std::unique_ptr<Prefetcher> pf);

    Prefetcher *prefetcher() { return prefetcher_.get(); }

    /**
     * Handles a fill request arriving at @p when.
     * @param l1_mask  requested sectors at L1 granularity (full-line
     *                 mask when partial accessing is off)
     * @param exclusive GetX (writes / exclusive prefetches)
     * @param demand   architectural-access context for L2-level
     *                 prefetcher training; null for non-demand fills
     */
    L2FillResult handleFill(Addr line_addr, std::uint32_t l1_mask,
                            bool exclusive, CoreId requester, Tick when,
                            const L2DemandHint *demand = nullptr);

    /** Dirty L1 eviction data arriving at @p when. */
    void handleWriteback(Addr line_addr, std::uint32_t l1_dirty_mask,
                         CoreId from, Tick when);

    /** Clean (silent) L1 eviction: directory state only. */
    void noteL1Evict(Addr line_addr, CoreId from);

    Directory &directory() { return dir_; }
    CacheStats &stats() { return stats_; }
    const CacheStats &stats() const { return stats_; }
    SectorCache &cache() { return cache_; }

    // ---- PrefetchHost (for the tile's L2-attached engine) ----
    bool linePresent(Addr addr) const override;
    bool issuePrefetch(const PrefetchRequest &req) override;
    std::uint64_t readValue(Addr addr, std::uint32_t bytes) const override;
    Tick now() const override { return eq_.now(); }

  private:
    /** Converts an L1 sector mask to this slice's sector mask. */
    std::uint32_t toL2Mask(std::uint32_t l1_mask) const;

    /** Home slice of @p line_addr (line-interleaved, as the L1 maps). */
    CoreId homeOf(Addr line_addr) const;

    /** Fetches @p l2_mask sectors from DRAM; returns data-ready tick. */
    Tick dramFetch(Addr line_addr, std::uint32_t l2_mask, Tick when);

    /** Installs a prefetch fill into THIS slice; returns data-ready. */
    Tick prefetchFill(Addr line_addr, std::uint32_t l2_mask, Tick when);

    /** Demand access/miss notification for this tile's engine (called
     *  by the home slice serving the fill); @p when is the tick the
     *  demand was observed there, the base for triggered prefetches. */
    void notifyDemand(const AccessInfo &info, bool l2_miss, Tick when);

    /** Evicts @p frame (writeback + back-invalidation). */
    void evictFrame(CacheLine &frame, Tick when);

    CoreId tile_;
    const SystemConfig &cfg_;
    EventQueue &eq_;
    MeshNoc &noc_;
    DramModel &dram_;
    const McMap &mcMap_;
    const FuncMem &mem_;
    SectorCache cache_;
    Directory dir_;
    std::vector<L1Backdoor *> l1s_;
    std::vector<L2Controller *> peers_;
    std::unique_ptr<Prefetcher> prefetcher_;
    /** Outstanding prefetches issued by THIS tile's engine. */
    std::uint32_t prefetchesInFlight_ = 0;
    /** While the engine's training hooks run: the tick the triggering
     *  demand was observed at its home slice (0 otherwise). */
    Tick trainTick_ = 0;
    /** An L2 prefetch whose DRAM data is still in flight. */
    struct PendingPrefetch
    {
        Tick ready = 0;         ///< Data arrives at the slice then.
        bool lateCounted = false; ///< A demand already counted it late.
    };
    /** Lines THIS slice is prefetching: every fill arriving before
     *  `ready` waits for the data; the record lives until the issuing
     *  tile's completion event (or an eviction) clears it. */
    FlatHashMap<Addr, PendingPrefetch> prefetchReady_;
    CacheStats stats_;
};

} // namespace impsim

#endif // IMPSIM_SIM_L2_CONTROLLER_HPP
