/**
 * @file
 * Simulator-speed benchmark: the pinned perf grids behind
 * `impsim_cli --bench-json` and `bench/perf_harness`.
 *
 * Unlike the `bench/fig*` binaries (which reproduce the *paper's*
 * numbers), this harness measures how fast the simulator itself runs:
 * wall time, simulations/second and simulated-cycles/second over
 * fixed grids with pinned seeds, emitted as machine-readable JSON so
 * every PR can diff its `BENCH_<n>.json` against the previous one
 * (docs/perf.md).
 */
#ifndef IMPSIM_SIM_PERF_BENCH_HPP
#define IMPSIM_SIM_PERF_BENCH_HPP

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

namespace impsim {

/** The fixed grids the harness knows how to time. */
enum class PerfGrid {
    /**
     * The tracked trajectory grid: all 8 apps x {Base, IMP} x {1, 16}
     * cores, in-order, scale 1.0, seed 42 — 32 simulations.
     */
    Pinned,
    /**
     * The Fig 9 16-core panel: 7 paper apps x {PerfPref, Base, IMP,
     * SWPref} x 16 cores — 28 simulations (the ">=2x sims/sec" gate).
     */
    Fig9,
    /**
     * CI-sized subset: 4 apps x {Base, IMP} x {1, 16} cores at scale
     * 0.25 — 16 fast simulations for the perf-smoke regression step.
     */
    Smoke,
};

/** Grid name as used in JSON and on the command line. */
const char *perfGridName(PerfGrid g);

/** Parses a grid name ("pinned", "fig9", "smoke"). */
bool parsePerfGridName(const std::string &name, PerfGrid &out);

/** Timing of one simulation point. */
struct PerfRunResult
{
    std::string label;       ///< "app/preset/Nc".
    double simulateMs = 0;   ///< Best-of-reps System::run wall time.
    std::uint64_t simCycles = 0;
    std::uint64_t instructions = 0;
    std::uint64_t accesses = 0; ///< Architectural memory accesses.
};

/** Timing of one full grid. */
struct PerfGridResult
{
    std::string name;
    double workloadMs = 0; ///< Trace/input generation (once per input).
    double simulateMs = 0; ///< Sum of per-run best-of-reps sim time.
    std::vector<PerfRunResult> runs;

    std::uint64_t totalSimCycles() const;
    std::uint64_t totalAccesses() const;
    /** Simulations per wall-second of simulate phase. */
    double simsPerSec() const;
    /** Simulated cycles per wall-second of simulate phase. */
    double cyclesPerSec() const;
};

/** A full harness invocation. */
struct PerfBenchResult
{
    std::vector<PerfGridResult> grids;
};

/**
 * Runs one grid @p reps times per point (best-of wall time; stats are
 * deterministic and asserted identical across reps) on the calling
 * thread, so timings are not polluted by scheduler noise.
 */
PerfGridResult runPerfGrid(PerfGrid grid, int reps = 1);

/** Runs several grids. */
PerfBenchResult runPerfBench(const std::vector<PerfGrid> &grids,
                             int reps = 1);

/**
 * Writes the result as JSON (schema "impsim-perf-v1", docs/perf.md).
 */
void writePerfJson(std::ostream &os, const PerfBenchResult &r);

/** Prints a human-readable summary table. */
void writePerfSummary(std::ostream &os, const PerfBenchResult &r);

} // namespace impsim

#endif // IMPSIM_SIM_PERF_BENCH_HPP
