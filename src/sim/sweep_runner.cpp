/**
 * @file
 * SweepRunner implementation: atomic work-stealing over a job list.
 */
#include "sim/sweep_runner.hpp"

#include <atomic>
#include <mutex>
#include <thread>

#include "common/logging.hpp"
#include "sim/system.hpp"

namespace impsim {

SweepRunner::SweepRunner(unsigned workers) : workers_(workers)
{
    if (workers_ == 0) {
        workers_ = std::thread::hardware_concurrency();
        if (workers_ == 0)
            workers_ = 1;
    }
}

std::vector<SweepResult>
SweepRunner::run(const std::vector<SweepJob> &jobs, SweepControl *ctl) const
{
    for (const SweepJob &job : jobs)
        IMPSIM_CHECK(job.traces != nullptr && job.mem != nullptr,
                     "SweepJob needs traces and a memory image");

    std::vector<SweepResult> results(jobs.size());
    for (SweepResult &r : results)
        r.ran = false;
    std::atomic<std::size_t> next{0};
    std::size_t done = 0; // guarded by progress_mutex
    std::mutex progress_mutex;

    auto worker = [&]() {
        for (;;) {
            if (ctl && ctl->cancelled())
                return;
            std::size_t i = next.fetch_add(1);
            if (i >= jobs.size())
                return;
            const SweepJob &job = jobs[i];
            System sys(job.cfg, *job.traces, *job.mem);
            results[i] = SweepResult{job.name, sys.run(job.limit), true};
            if (ctl && ctl->onProgress) {
                // Count and notify under one lock so done counts
                // arrive strictly monotone 1..N.
                std::lock_guard<std::mutex> lock(progress_mutex);
                ctl->onProgress(++done, jobs.size());
            }
        }
    };

    unsigned n = workers_;
    if (n > jobs.size())
        n = static_cast<unsigned>(jobs.size());
    if (n <= 1) {
        worker();
        return results;
    }

    std::vector<std::thread> pool;
    pool.reserve(n);
    for (unsigned t = 0; t < n; ++t)
        pool.emplace_back(worker);
    for (std::thread &t : pool)
        t.join();
    return results;
}

} // namespace impsim
