/**
 * @file
 * SweepRunner implementation: atomic work-stealing over a job list.
 */
#include "sim/sweep_runner.hpp"

#include <algorithm>
#include <atomic>
#include <mutex>
#include <thread>

#include "common/logging.hpp"
#include "sim/system.hpp"

namespace impsim {

namespace {

unsigned
resolveWorkers(unsigned workers)
{
    if (workers == 0) {
        workers = std::thread::hardware_concurrency();
        if (workers == 0)
            workers = 1;
    }
    return workers;
}

} // namespace

// ---- WorkerPool ------------------------------------------------------

WorkerPool::WorkerPool(unsigned slots) : slots_(resolveWorkers(slots)) {}

WorkerPool::~WorkerPool()
{
    close();
    // Leases outliving their pool would dereference it; that is a
    // caller bug, made loud here instead of a later wild pointer.
    std::lock_guard<std::mutex> lock(mutex_);
    IMPSIM_CHECK(leases_.empty(), "WorkerPool destroyed with open leases");
}

WorkerPool::Lease::Lease(WorkerPool &pool, double weight)
    : pool_(&pool), weight_(weight > 0 ? weight : 1.0)
{
}

WorkerPool::Lease::~Lease()
{
    std::lock_guard<std::mutex> lock(pool_->mutex_);
    IMPSIM_CHECK(held_ == 0 && waitTickets_.empty(),
                 "WorkerPool lease destroyed while in use");
    pool_->leases_.erase(std::find(pool_->leases_.begin(),
                                   pool_->leases_.end(), this));
    pool_->recompute();
    pool_->cv_.notify_all();
}

std::unique_ptr<WorkerPool::Lease>
WorkerPool::lease(double weight)
{
    std::unique_ptr<Lease> l(new Lease(*this, weight));
    std::lock_guard<std::mutex> lock(mutex_);
    leases_.push_back(l.get());
    recompute();
    return l;
}

void
WorkerPool::close()
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        closed_ = true;
    }
    cv_.notify_all();
}

void
WorkerPool::recompute()
{
    // Only leases with demand — a worker running or blocked — take
    // part; an open but idle lease consumes nothing.
    std::vector<Lease *> active;
    double weightSum = 0.0;
    for (Lease *l : leases_) {
        if (l->held_ > 0 || !l->waitTickets_.empty()) {
            active.push_back(l);
            weightSum += l->weight_;
        } else {
            l->target_ = 0;
        }
    }
    if (active.empty())
        return;

    // Weighted shares, floored, at least 1 while slots remain.
    // Heaviest first, so when leases outnumber slots the min-1
    // guarantee starves the lightest, not the heaviest.
    std::stable_sort(active.begin(), active.end(),
                     [](const Lease *a, const Lease *b) {
                         return a->weight_ > b->weight_;
                     });
    unsigned remaining = slots_;
    for (Lease *l : active) {
        auto share = static_cast<unsigned>(
            static_cast<double>(slots_) * (l->weight_ / weightSum));
        share = std::max(share, 1u);
        share = std::min(share, remaining);
        l->target_ = share;
        remaining -= share;
    }

    // Leftover slots (rounding, or shares nobody can use) go to the
    // longest-waiting lease first: the one whose oldest blocked
    // acquire() has the smallest ticket.
    for (;;) {
        if (remaining == 0)
            return;
        Lease *pick = nullptr;
        for (Lease *l : active) {
            if (l->waitTickets_.empty())
                continue;
            if (l->target_ >= l->held_ + l->waitTickets_.size())
                continue; // demand already satisfied
            if (!pick ||
                l->waitTickets_.front() < pick->waitTickets_.front())
                pick = l;
        }
        if (!pick)
            return;
        ++pick->target_;
        --remaining;
    }
}

bool
WorkerPool::canGrant(const Lease &l) const
{
    if (heldTotal_ >= slots_)
        return false;
    if (l.held_ < l.target_)
        return true;
    // Borrowing an idle slot beyond the target: only when nobody
    // under-target is waiting, and only for the longest-waiting of
    // the over-target leases.
    for (const Lease *o : leases_) {
        if (o->waitTickets_.empty())
            continue;
        if (o->held_ < o->target_)
            return false;
        if (o != &l && o->waitTickets_.front() < l.waitTickets_.front())
            return false;
    }
    return true;
}

bool
WorkerPool::Lease::acquire()
{
    std::unique_lock<std::mutex> lock(pool_->mutex_);
    const std::uint64_t ticket = ++pool_->ticketSeq_;
    waitTickets_.push_back(ticket);
    pool_->recompute();
    pool_->cv_.wait(lock, [&] {
        return pool_->closed_ || pool_->canGrant(*this);
    });
    waitTickets_.erase(std::find(waitTickets_.begin(), waitTickets_.end(),
                                 ticket));
    if (pool_->closed_) {
        pool_->recompute();
        return false;
    }
    ++held_;
    ++pool_->heldTotal_;
    // Taking a slot shrinks this lease's unmet demand; leftover
    // redistribution may now favour another lease's waiter, so wake
    // them to re-check.
    pool_->recompute();
    pool_->cv_.notify_all();
    return true;
}

void
WorkerPool::Lease::release()
{
    {
        std::lock_guard<std::mutex> lock(pool_->mutex_);
        IMPSIM_CHECK(held_ > 0, "WorkerPool release without acquire");
        --held_;
        --pool_->heldTotal_;
        pool_->recompute();
    }
    pool_->cv_.notify_all();
}

unsigned
WorkerPool::Lease::held() const
{
    std::lock_guard<std::mutex> lock(pool_->mutex_);
    return held_;
}

unsigned
WorkerPool::Lease::target() const
{
    std::lock_guard<std::mutex> lock(pool_->mutex_);
    return target_;
}

// ---- SweepRunner -----------------------------------------------------

SweepRunner::SweepRunner(unsigned workers)
    : workers_(resolveWorkers(workers))
{
}

std::vector<SweepResult>
SweepRunner::run(const std::vector<SweepJob> &jobs, SweepControl *ctl,
                 WorkerPool::Lease *lease) const
{
    for (const SweepJob &job : jobs)
        IMPSIM_CHECK(job.traces != nullptr && job.mem != nullptr,
                     "SweepJob needs traces and a memory image");

    std::vector<SweepResult> results(jobs.size());
    for (SweepResult &r : results)
        r.ran = false;
    std::atomic<std::size_t> next{0};
    std::size_t done = 0; // guarded by progress_mutex
    std::mutex progress_mutex;

    auto worker = [&]() {
        for (;;) {
            if (ctl && ctl->cancelled())
                return;
            // The slot comes before the work item: a worker that
            // blocks here has claimed nothing, so the batch stays
            // cancellable and rebalanceable between simulations.
            if (lease && !lease->acquire())
                return;
            std::size_t i = next.fetch_add(1);
            if (i >= jobs.size() || (ctl && ctl->cancelled())) {
                if (lease)
                    lease->release();
                return;
            }
            const SweepJob &job = jobs[i];
            System sys(job.cfg, *job.traces, *job.mem);
            results[i] = SweepResult{job.name, sys.run(job.limit), true};
            if (lease)
                lease->release();
            if (ctl && ctl->onProgress) {
                // Count and notify under one lock so done counts
                // arrive strictly monotone 1..N.
                std::lock_guard<std::mutex> lock(progress_mutex);
                ctl->onProgress(++done, jobs.size());
            }
        }
    };

    unsigned n = workers_;
    if (n > jobs.size())
        n = static_cast<unsigned>(jobs.size());
    if (n <= 1) {
        worker();
        return results;
    }

    std::vector<std::thread> pool;
    pool.reserve(n);
    for (unsigned t = 0; t < n; ++t)
        pool.emplace_back(worker);
    for (std::thread &t : pool)
        t.join();
    return results;
}

} // namespace impsim
