/**
 * @file
 * SweepRunner implementation: atomic work-stealing over a job list.
 */
#include "sim/sweep_runner.hpp"

#include <algorithm>
#include <atomic>
#include <thread>

#include "common/logging.hpp"
#include "sim/system.hpp"

namespace impsim {

namespace {

unsigned
resolveWorkers(unsigned workers)
{
    if (workers == 0) {
        workers = std::thread::hardware_concurrency();
        if (workers == 0)
            workers = 1;
    }
    return workers;
}

} // namespace

// ---- WorkerPool ------------------------------------------------------

WorkerPool::WorkerPool(unsigned slots) : slots_(resolveWorkers(slots)) {}

WorkerPool::~WorkerPool()
{
    close();
    // Leases outliving their pool would dereference it; that is a
    // caller bug, made loud here instead of a later wild pointer.
    MutexLock lock(mutex_);
    IMPSIM_CHECK(leases_.empty(), "WorkerPool destroyed with open leases");
}

WorkerPool::Lease::~Lease()
{
    MutexLock lock(pool_->mutex_);
    auto it = pool_->leases_.find(this);
    IMPSIM_CHECK(it != pool_->leases_.end(),
                 "WorkerPool lease unknown to its pool");
    IMPSIM_CHECK(it->second.held == 0 && it->second.waitTickets.empty(),
                 "WorkerPool lease destroyed while in use");
    pool_->leases_.erase(it);
    pool_->recompute();
    pool_->cv_.notify_all();
}

std::unique_ptr<WorkerPool::Lease>
WorkerPool::lease(double weight)
{
    std::unique_ptr<Lease> l(new Lease(*this));
    MutexLock lock(mutex_);
    LeaseState st;
    st.weight = weight > 0 ? weight : 1.0;
    st.order = ++leaseSeq_;
    leases_.emplace(l.get(), std::move(st));
    recompute();
    return l;
}

WorkerPool::LeaseState &
WorkerPool::stateOf(const Lease &l)
{
    auto it = leases_.find(&l);
    IMPSIM_CHECK(it != leases_.end(),
                 "WorkerPool lease unknown to its pool");
    return it->second;
}

void
WorkerPool::close()
{
    {
        MutexLock lock(mutex_);
        closed_ = true;
    }
    cv_.notify_all();
}

void
WorkerPool::recompute()
{
    // Only leases with demand — a worker running or blocked — take
    // part; an open but idle lease consumes nothing.
    std::vector<LeaseState *> active;
    double weightSum = 0.0;
    for (auto &entry : leases_) {
        LeaseState &st = entry.second;
        if (st.held > 0 || !st.waitTickets.empty()) {
            active.push_back(&st);
            weightSum += st.weight;
        } else {
            st.target = 0;
        }
    }
    if (active.empty())
        return;

    // Weighted shares, floored, at least 1 while slots remain.
    // Heaviest first, so when leases outnumber slots the min-1
    // guarantee starves the lightest, not the heaviest; equal
    // weights keep lease-creation order, as the old stable_sort did.
    std::sort(active.begin(), active.end(),
              [](const LeaseState *a, const LeaseState *b) {
                  return a->weight != b->weight ? a->weight > b->weight
                                                : a->order < b->order;
              });
    unsigned remaining = slots_;
    for (LeaseState *st : active) {
        auto share = static_cast<unsigned>(
            static_cast<double>(slots_) * (st->weight / weightSum));
        share = std::max(share, 1u);
        share = std::min(share, remaining);
        st->target = share;
        remaining -= share;
    }

    // Leftover slots (rounding, or shares nobody can use) go to the
    // longest-waiting lease first: the one whose oldest blocked
    // acquire() has the smallest ticket.
    for (;;) {
        if (remaining == 0)
            return;
        LeaseState *pick = nullptr;
        for (LeaseState *st : active) {
            if (st->waitTickets.empty())
                continue;
            if (st->target >= st->held + st->waitTickets.size())
                continue; // demand already satisfied
            if (!pick ||
                st->waitTickets.front() < pick->waitTickets.front())
                pick = st;
        }
        if (!pick)
            return;
        ++pick->target;
        --remaining;
    }
}

bool
WorkerPool::canGrant(const LeaseState &st) const
{
    if (heldTotal_ >= slots_)
        return false;
    if (st.held < st.target)
        return true;
    // Borrowing an idle slot beyond the target: only when nobody
    // under-target is waiting, and only for the longest-waiting of
    // the over-target leases.
    for (const auto &entry : leases_) {
        const LeaseState &o = entry.second;
        if (o.waitTickets.empty())
            continue;
        if (o.held < o.target)
            return false;
        if (&o != &st && o.waitTickets.front() < st.waitTickets.front())
            return false;
    }
    return true;
}

bool
WorkerPool::Lease::acquire()
{
    MutexLock lock(pool_->mutex_);
    LeaseState &st = pool_->stateOf(*this);
    const std::uint64_t ticket = ++pool_->ticketSeq_;
    st.waitTickets.push_back(ticket);
    pool_->recompute();
    while (!pool_->closed_ && !pool_->canGrant(st))
        pool_->cv_.wait(lock);
    st.waitTickets.erase(
        std::find(st.waitTickets.begin(), st.waitTickets.end(), ticket));
    if (pool_->closed_) {
        pool_->recompute();
        return false;
    }
    ++st.held;
    ++pool_->heldTotal_;
    // Taking a slot shrinks this lease's unmet demand; leftover
    // redistribution may now favour another lease's waiter, so wake
    // them to re-check.
    pool_->recompute();
    pool_->cv_.notify_all();
    return true;
}

void
WorkerPool::Lease::release()
{
    {
        MutexLock lock(pool_->mutex_);
        LeaseState &st = pool_->stateOf(*this);
        IMPSIM_CHECK(st.held > 0, "WorkerPool release without acquire");
        --st.held;
        --pool_->heldTotal_;
        pool_->recompute();
    }
    pool_->cv_.notify_all();
}

unsigned
WorkerPool::Lease::held() const
{
    MutexLock lock(pool_->mutex_);
    return pool_->stateOf(*this).held;
}

unsigned
WorkerPool::Lease::target() const
{
    MutexLock lock(pool_->mutex_);
    return pool_->stateOf(*this).target;
}

// ---- Sub-batch splitting ---------------------------------------------

std::vector<std::pair<std::size_t, std::size_t>>
splitSubBatches(std::size_t total, std::size_t chunk)
{
    if (chunk == 0)
        chunk = 1;
    std::vector<std::pair<std::size_t, std::size_t>> out;
    out.reserve(total / chunk + 1);
    for (std::size_t first = 0; first < total; first += chunk)
        out.emplace_back(first, std::min(chunk, total - first));
    return out;
}

// ---- SweepRunner -----------------------------------------------------

SweepRunner::SweepRunner(unsigned workers)
    : workers_(resolveWorkers(workers))
{
}

std::vector<SweepResult>
SweepRunner::run(const std::vector<SweepJob> &jobs, SweepControl *ctl,
                 WorkerPool::Lease *lease) const
{
    for (const SweepJob &job : jobs)
        IMPSIM_CHECK(job.traces != nullptr && job.mem != nullptr,
                     "SweepJob needs traces and a memory image");

    std::vector<SweepResult> results(jobs.size());
    for (SweepResult &r : results)
        r.ran = false;
    std::atomic<std::size_t> next{0};
    std::size_t done = 0; // guarded by progressMutex
    Mutex progressMutex;

    auto worker = [&]() {
        for (;;) {
            if (ctl && ctl->cancelled())
                return;
            // The slot comes before the work item: a worker that
            // blocks here has claimed nothing, so the batch stays
            // cancellable and rebalanceable between simulations.
            if (lease && !lease->acquire())
                return;
            std::size_t i = next.fetch_add(1);
            if (i >= jobs.size() || (ctl && ctl->cancelled())) {
                if (lease)
                    lease->release();
                return;
            }
            const SweepJob &job = jobs[i];
            System sys(job.cfg, *job.traces, *job.mem);
            results[i] = SweepResult{job.name, sys.run(job.limit), true};
            if (lease)
                lease->release();
            if (ctl && ctl->onProgress) {
                // Count and notify under one lock so done counts
                // arrive strictly monotone 1..N.
                MutexLock lock(progressMutex);
                ctl->onProgress(++done, jobs.size());
            }
        }
    };

    unsigned n = workers_;
    if (n > jobs.size())
        n = static_cast<unsigned>(jobs.size());
    if (n <= 1) {
        worker();
        return results;
    }

    std::vector<std::thread> pool;
    pool.reserve(n);
    for (unsigned t = 0; t < n; ++t)
        pool.emplace_back(worker);
    for (std::thread &t : pool)
        t.join();
    return results;
}

} // namespace impsim
