/**
 * @file
 * Private L1-D controller: the core's MemPort, the prefetcher's host,
 * and the coherence backdoor, in one place.
 *
 * Demand accesses look up the (optionally sectored) L1; misses launch
 * fill transactions whose end-to-end timing is composed through the
 * NoC, the home L2 slice, the directory and DRAM. Prefetches share
 * the same fill path. Completion installs the line, wakes merged
 * demands and notifies the prefetcher.
 */
#ifndef IMPSIM_SIM_L1_CONTROLLER_HPP
#define IMPSIM_SIM_L1_CONTROLLER_HPP

#include <cstdint>
#include <memory>
#include <vector>

#include "cache/sector_cache.hpp"
#include "common/flat_map.hpp"
#include "common/config.hpp"
#include "common/event_queue.hpp"
#include "common/func_mem.hpp"
#include "common/stats.hpp"
#include "core/prefetcher.hpp"
#include "core/tlb.hpp"
#include "cpu/mem_port.hpp"
#include "cpu/trace.hpp"
#include "noc/mesh.hpp"
#include "sim/l2_controller.hpp"

namespace impsim {

class GhbPrefetcher;
class ImpPrefetcher;
class StreamPrefetcher;

/** The per-core L1 data cache controller. */
class L1Controller final : public MemPort,
                           public PrefetchHost,
                           public L1Backdoor,
                           public TlbWalkPort
{
  public:
    /** @param mmu translation model, or nullptr for free translation
     *        (the TLB model off, magic or perfect memory). */
    L1Controller(CoreId core, const SystemConfig &cfg, EventQueue &eq,
                 MeshNoc &noc, const FuncMem &mem,
                 std::vector<L2Controller *> l2s, Mmu *mmu = nullptr);

    /** Attaches (or replaces) the prefetcher snooping this cache. */
    void attachPrefetcher(std::unique_ptr<Prefetcher> pf);

    Prefetcher *prefetcher() { return prefetcher_.get(); }
    SectorCache &cache() { return cache_; }
    CacheStats &stats() { return stats_; }
    const CacheStats &stats() const { return stats_; }

    // ---- MemPort ----
    void demandAccess(const MemAccess &access, DemandDoneFn done) override;
    void softwarePrefetch(Addr addr, std::uint32_t pc) override;

    // ---- PrefetchHost ----
    bool linePresent(Addr addr) const override;
    bool issuePrefetch(const PrefetchRequest &req) override;
    std::uint64_t readValue(Addr addr, std::uint32_t bytes) const override;
    Tick now() const override { return eq_.now(); }

    // ---- L1Backdoor ----
    std::uint32_t backInvalidate(Addr line_addr) override;
    std::uint32_t downgrade(Addr line_addr) override;

    // ---- TlbWalkPort ----
    void walkAccess(Addr addr, TlbDoneFn done) override;

  private:
    struct Waiter
    {
        MemAccess access;
        DemandDoneFn done;
    };

    struct PendingFill
    {
        std::uint32_t mask = 0; ///< L1 sectors being fetched.
        bool exclusive = false;
        bool isPrefetch = false;
        bool indirect = false;
        std::uint16_t patternId = kNoPattern;
        bool invalidated = false;   ///< Back-invalidated in flight.
        bool demandMerged = false;  ///< A demand is waiting on it.
        Tick completion = 0;
        std::vector<Waiter> waiters;
    };

    /**
     * demandAccess body, re-entered by retries and replays: everything
     * counted once per architectural access lives in demandAccess.
     * @param notify whether this pass may notify the prefetchers —
     *        false for replays whose first pass already observed the
     *        access (retries pass true: their first pass stayed
     *        silent)
     */
    void demandAccessImpl(const MemAccess &access, DemandDoneFn done,
                          bool notify = true);

    /** Requested-sector mask for an access, clipped to its line. */
    std::uint32_t maskFor(Addr addr, std::uint32_t size) const;

    /** Home tile of a line (line-interleaved L2 slices). */
    CoreId homeOf(Addr line_addr) const;

    /**
     * Starts a fill transaction.
     * @param origin demand access behind the fill (forwarded to the L2
     *               for L2-level prefetcher training); null for
     *               prefetch fills
     * @return the new pending entry (valid until the next pending_
     *         insertion), or nullptr if a fill is already in flight
     */
    PendingFill *launchFill(Addr line_addr, std::uint32_t mask,
                            bool exclusive, bool is_prefetch,
                            bool indirect, std::uint16_t pattern_id,
                            const MemAccess *origin = nullptr);

    /** The TLB page-crossing gate (cold: only when the MMU is on). */
    bool issuePrefetchGated(const PrefetchRequest &req);
    /** issuePrefetch body, after the TLB page-crossing gate. */
    bool issuePrefetchNow(const PrefetchRequest &req);
    /** DTLB-miss continuation (cold: only when the MMU is on). */
    void demandAccessTlbMiss(const MemAccess &access, DemandDoneFn done);

    void completeFill(Addr line_addr);
    void perfectAccess(const MemAccess &access, DemandDoneFn done);
    void evictFrame(CacheLine &frame);
    void applyWrite(Addr addr, std::uint32_t size);
    void finishDemand(const MemAccess &access, DemandDoneFn &done,
                      Tick when);

    /**
     * The engine's concrete type, resolved once at attach so the
     * per-access notification is a switch with direct calls into the
     * final engine classes instead of a virtual dispatch. Composite
     * ('+'-composed) and unknown engines take the virtual fallback.
     */
    enum class PfKind : std::uint8_t { None, Imp, Stream, Ghb, Other };

    void notifyAccess(const AccessInfo &info);
    void notifyMiss(const AccessInfo &info);

    CoreId core_;
    const SystemConfig &cfg_;
    EventQueue &eq_;
    MeshNoc &noc_;
    const FuncMem &mem_;
    std::vector<L2Controller *> l2s_;
    Mmu *mmu_; ///< Null = translation is free.
    SectorCache cache_;
    std::unique_ptr<Prefetcher> prefetcher_;
    PfKind pfKind_ = PfKind::None;
    ImpPrefetcher *pfImp_ = nullptr;
    StreamPrefetcher *pfStream_ = nullptr;
    GhbPrefetcher *pfGhb_ = nullptr;
    FlatHashMap<Addr, PendingFill> pending_;
    std::uint32_t prefetchesInFlight_ = 0;
    CacheStats stats_;
};

} // namespace impsim

#endif // IMPSIM_SIM_L1_CONTROLLER_HPP
