/**
 * @file
 * Preset construction.
 */
#include "sim/presets.hpp"

#include "common/logging.hpp"

namespace impsim {

const char *
presetName(ConfigPreset p)
{
    switch (p) {
      case ConfigPreset::Ideal:
        return "Ideal";
      case ConfigPreset::PerfectPref:
        return "PerfPref";
      case ConfigPreset::Baseline:
        return "Base";
      case ConfigPreset::SwPref:
        return "SWPref";
      case ConfigPreset::Imp:
        return "IMP";
      case ConfigPreset::ImpPartialNoc:
        return "Partial-NoC";
      case ConfigPreset::ImpPartialNocDram:
        return "Partial-NoC+DRAM";
      case ConfigPreset::Ghb:
        return "GHB";
      case ConfigPreset::NoPrefetch:
        return "NoPref";
    }
    IMPSIM_PANIC("unknown preset");
}

const std::vector<ConfigPreset> &
allPresets()
{
    static const std::vector<ConfigPreset> presets{
        ConfigPreset::Ideal,         ConfigPreset::PerfectPref,
        ConfigPreset::Baseline,      ConfigPreset::SwPref,
        ConfigPreset::Imp,           ConfigPreset::ImpPartialNoc,
        ConfigPreset::ImpPartialNocDram, ConfigPreset::Ghb,
        ConfigPreset::NoPrefetch,
    };
    return presets;
}

bool
parsePresetName(const std::string &name, ConfigPreset &out)
{
    for (ConfigPreset p : allPresets()) {
        if (name == presetName(p)) {
            out = p;
            return true;
        }
    }
    return false;
}

SystemConfig
makePreset(ConfigPreset p, std::uint32_t cores, CoreModel model)
{
    SystemConfig cfg;
    cfg.numCores = cores;
    cfg.coreModel = model;
    // Presets express their engine as a registry spec string; callers
    // may overwrite prefetcherSpec / l2PrefetcherSpec afterwards to
    // re-aim any preset at a different engine or cache level.
    switch (p) {
      case ConfigPreset::Ideal:
        cfg.magicMemory = true;
        cfg.prefetcherSpec = "none";
        break;
      case ConfigPreset::PerfectPref:
        cfg.perfectMemory = true;
        cfg.prefetcherSpec = "none";
        break;
      case ConfigPreset::Baseline:
      case ConfigPreset::SwPref:
        cfg.prefetcherSpec = "stream";
        break;
      case ConfigPreset::Imp:
        cfg.prefetcherSpec = "imp";
        break;
      case ConfigPreset::ImpPartialNoc:
        cfg.prefetcherSpec = "imp";
        cfg.partial = PartialMode::NocOnly;
        break;
      case ConfigPreset::ImpPartialNocDram:
        cfg.prefetcherSpec = "imp";
        cfg.partial = PartialMode::NocAndDram;
        break;
      case ConfigPreset::Ghb:
        cfg.prefetcherSpec = "stream+ghb";
        break;
      case ConfigPreset::NoPrefetch:
        cfg.prefetcherSpec = "none";
        break;
    }
    cfg.validate();
    return cfg;
}

bool
presetWantsSwPrefetch(ConfigPreset p)
{
    return p == ConfigPreset::SwPref;
}

} // namespace impsim
