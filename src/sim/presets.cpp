/**
 * @file
 * Preset construction.
 */
#include "sim/presets.hpp"

#include "common/logging.hpp"

namespace impsim {

const char *
presetName(ConfigPreset p)
{
    switch (p) {
      case ConfigPreset::Ideal:
        return "Ideal";
      case ConfigPreset::PerfectPref:
        return "PerfPref";
      case ConfigPreset::Baseline:
        return "Base";
      case ConfigPreset::SwPref:
        return "SWPref";
      case ConfigPreset::Imp:
        return "IMP";
      case ConfigPreset::ImpPartialNoc:
        return "Partial-NoC";
      case ConfigPreset::ImpPartialNocDram:
        return "Partial-NoC+DRAM";
      case ConfigPreset::Ghb:
        return "GHB";
      case ConfigPreset::NoPrefetch:
        return "NoPref";
    }
    IMPSIM_PANIC("unknown preset");
}

SystemConfig
makePreset(ConfigPreset p, std::uint32_t cores, CoreModel model)
{
    SystemConfig cfg;
    cfg.numCores = cores;
    cfg.coreModel = model;
    // Presets express their engine through the deprecated enum and
    // leave prefetcherSpec empty, so legacy callers that overwrite
    // cfg.prefetcher after makePreset() keep working; construction
    // still resolves through effectivePrefetcherSpec() and the
    // registry, and explicit spec strings override the enum.
    switch (p) {
      case ConfigPreset::Ideal:
        cfg.magicMemory = true;
        cfg.prefetcher = PrefetcherKind::None;
        break;
      case ConfigPreset::PerfectPref:
        cfg.perfectMemory = true;
        cfg.prefetcher = PrefetcherKind::None;
        break;
      case ConfigPreset::Baseline:
      case ConfigPreset::SwPref:
        cfg.prefetcher = PrefetcherKind::Stream;
        break;
      case ConfigPreset::Imp:
        cfg.prefetcher = PrefetcherKind::Imp;
        break;
      case ConfigPreset::ImpPartialNoc:
        cfg.prefetcher = PrefetcherKind::Imp;
        cfg.partial = PartialMode::NocOnly;
        break;
      case ConfigPreset::ImpPartialNocDram:
        cfg.prefetcher = PrefetcherKind::Imp;
        cfg.partial = PartialMode::NocAndDram;
        break;
      case ConfigPreset::Ghb:
        cfg.prefetcher = PrefetcherKind::Ghb;
        break;
      case ConfigPreset::NoPrefetch:
        cfg.prefetcher = PrefetcherKind::None;
        break;
    }
    cfg.validate();
    return cfg;
}

bool
presetWantsSwPrefetch(ConfigPreset p)
{
    return p == ConfigPreset::SwPref;
}

} // namespace impsim
