/**
 * @file
 * Whole-machine assembly and simulation driver.
 */
#ifndef IMPSIM_SIM_SYSTEM_HPP
#define IMPSIM_SIM_SYSTEM_HPP

#include <memory>
#include <vector>

#include "common/config.hpp"
#include "common/event_queue.hpp"
#include "common/func_mem.hpp"
#include "common/stats.hpp"
#include "cpu/barrier.hpp"
#include "cpu/core_iface.hpp"
#include "cpu/trace.hpp"
#include "sim/mem_hierarchy.hpp"

namespace impsim {

/** Default safety tick bound for System::run and SweepJob::limit. */
inline constexpr Tick kDefaultRunLimit = Tick{4} * 1000 * 1000 * 1000;

/**
 * A complete simulated machine bound to one set of per-core traces.
 *
 * Usage:
 *   System sys(cfg, traces, mem);
 *   SimStats stats = sys.run();
 */
class System
{
  public:
    /**
     * @param traces one trace per core; traces.size() must equal
     *               cfg.numCores
     * @param mem    functional memory image backing index values
     */
    System(const SystemConfig &cfg, const std::vector<CoreTrace> &traces,
           const FuncMem &mem);

    /**
     * Runs to completion.
     * @param limit safety tick bound; exceeding it is a fatal error
     *        (deadlock in the modeled machine).
     */
    SimStats run(Tick limit = kDefaultRunLimit);

    // ---- Component access for tests and examples ----
    EventQueue &eventQueue() { return eq_; }
    MemHierarchy &hierarchy() { return *hier_; }
    TraceCore &core(CoreId c) { return *cores_[c]; }
    const SystemConfig &config() const { return cfg_; }

  private:
    void buildCores();
    void attachL2Prefetchers();
    std::unique_ptr<Prefetcher> makePrefetcher(CoreId c);

    SystemConfig cfg_;
    const std::vector<CoreTrace> &traces_;
    EventQueue eq_;
    std::unique_ptr<MemHierarchy> hier_;
    std::unique_ptr<Barrier> barrier_;
    std::vector<std::unique_ptr<TraceCore>> cores_;
    std::uint32_t coresDone_ = 0;
};

} // namespace impsim

#endif // IMPSIM_SIM_SYSTEM_HPP
