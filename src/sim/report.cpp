/**
 * @file
 * Report writers.
 */
#include "sim/report.hpp"

#include <ostream>

namespace impsim {

namespace {

double
pct(std::uint64_t num, std::uint64_t den)
{
    return den == 0 ? 0.0
                    : 100.0 * static_cast<double>(num) /
                          static_cast<double>(den);
}

} // namespace

void
writeReport(std::ostream &os, const std::string &label, const SimStats &s)
{
    os << "==== " << label << " ====\n";
    os << "cycles                " << s.cycles << "\n";
    os << "instructions          " << s.core.instructions << "\n";
    os << "aggregate IPC         " << s.ipc() << "\n";
    os << "avg load latency      " << s.avgLoadLatency() << " cycles\n";

    os << "-- L1 (all cores) --\n";
    std::uint64_t lookups = s.l1.hits + s.l1.misses + s.l1.prefLate +
                            s.l1.demandMerges;
    os << "hits / misses         " << s.l1.hits << " / " << s.l1.misses
       << "  (miss " << pct(s.l1.misses, lookups) << "%)\n";
    os << "miss breakdown        ";
    for (int t = 0; t < kNumAccessTypes; ++t) {
        os << accessTypeName(static_cast<AccessType>(t)) << " "
           << pct(s.l1.missesByType[t], s.l1.misses) << "%  ";
    }
    os << "\n";
    os << "sector misses         " << s.l1.sectorMisses << "\n";
    os << "evictions/writebacks  " << s.l1.evictions << " / "
       << s.l1.writebacks << "\n";

    os << "-- L1 prefetching --\n";
    os << "issued                " << s.l1.prefIssued << " (indirect "
       << s.l1.prefIssuedIndirect << ", stream "
       << s.l1.prefIssuedStream << ", upgrades "
       << s.l1.prefUpgrades << ")\n";
    os << "coverage / accuracy   " << s.l1.coverage() << " / "
       << s.l1.accuracy() << "\n";
    os << "useful/late/unused    " << s.l1.prefUsefulFirstTouch << " / "
       << s.l1.prefLate << " / " << s.l1.prefUnused << "\n";

    os << "-- L2 --\n";
    os << "hits / misses         " << s.l2.hits << " / " << s.l2.misses
       << "\n";

    os << "-- L2 prefetching --\n";
    os << "issued                " << s.l2.prefIssued << " (indirect "
       << s.l2.prefIssuedIndirect << ", stream "
       << s.l2.prefIssuedStream << ")\n";
    os << "coverage / accuracy   " << s.l2.coverage() << " / "
       << s.l2.accuracy() << "\n";
    os << "useful/late/unused    " << s.l2.prefUsefulFirstTouch << " / "
       << s.l2.prefLate << " / " << s.l2.prefUnused << "\n";

    os << "-- NoC --\n";
    os << "messages / flit-hops  " << s.noc.messages << " / "
       << s.noc.flitHops << "\n";
    os << "bytes / queue cycles  " << s.noc.bytes << " / "
       << s.noc.queueCycles << "\n";

    os << "-- DRAM --\n";
    os << "reads / writes        " << s.dram.reads << " / "
       << s.dram.writes << "\n";
    os << "bytes (rd+wr)         " << s.dram.bytes() << "\n";
    os << "row hits / misses     " << s.dram.rowHits << " / "
       << s.dram.rowMisses << "\n";
    os << "queue cycles          " << s.dram.queueCycles << "\n";

    if (s.tlb.enabled) {
        os << "-- TLB --\n";
        os << "dtlb hits / misses    " << s.tlb.l1Hits << " / "
           << s.tlb.l1Misses << "  (MPKI "
           << s.tlb.l1Mpki(s.core.instructions) << ")\n";
        os << "l2 tlb hits / misses  " << s.tlb.l2Hits << " / "
           << s.tlb.l2Misses << "  (MPKI "
           << s.tlb.l2Mpki(s.core.instructions) << ")\n";
        os << "walks / joins         " << s.tlb.walks << " / "
           << s.tlb.walkJoins << "\n";
        os << "walk PTE reads        " << s.tlb.walkAccesses << "\n";
        os << "avg walk latency      " << s.tlb.avgWalkCycles()
           << " cycles\n";
        os << "demand stall cycles   " << s.tlb.stallCycles << "\n";
        os << "pf same-page          " << s.tlb.pfSamePage << "\n";
        os << "pf cross drop/stall/translate "
           << s.tlb.pfCrossDropped << " / " << s.tlb.pfCrossStalled
           << " / " << s.tlb.pfCrossTranslated << " (translate-dropped "
           << s.tlb.pfTranslateDropped << ")\n";
    }
}

void
writeCsvHeader(std::ostream &os, bool with_tlb)
{
    os << "label,cycles,instructions,ipc,avg_load_latency,"
          "l1_hits,l1_misses,l1_miss_indirect,l1_miss_stream,"
          "l1_miss_other,pref_issued,pref_indirect,coverage,accuracy,"
          "l2_pref_issued,l2_pref_useful,l2_coverage,"
          "noc_bytes,noc_queue_cycles,dram_bytes,dram_queue_cycles";
    if (with_tlb) {
        os << ",tlb_l1_mpki,tlb_l2_mpki,tlb_walks,tlb_walk_cycles,"
              "tlb_stall_cycles,pf_cross_dropped,pf_cross_stalled,"
              "pf_cross_translated";
    }
    os << "\n";
}

void
writeCsvRow(std::ostream &os, const std::string &label, const SimStats &s,
            bool with_tlb)
{
    os << label << ',' << s.cycles << ',' << s.core.instructions << ','
       << s.ipc() << ',' << s.avgLoadLatency() << ',' << s.l1.hits
       << ',' << s.l1.misses << ','
       << s.l1.missesByType[static_cast<int>(AccessType::Indirect)]
       << ','
       << s.l1.missesByType[static_cast<int>(AccessType::Stream)] << ','
       << s.l1.missesByType[static_cast<int>(AccessType::Other)] << ','
       << s.l1.prefIssued << ',' << s.l1.prefIssuedIndirect << ','
       << s.l1.coverage() << ',' << s.l1.accuracy() << ','
       << s.l2.prefIssued << ',' << s.l2.prefUsefulFirstTouch << ','
       << s.l2.coverage() << ','
       << s.noc.bytes << ',' << s.noc.queueCycles << ','
       << s.dram.bytes() << ',' << s.dram.queueCycles;
    if (with_tlb) {
        // A TLB-off run inside a mixed sweep emits zeros here, so
        // every row has the same arity as the widened header.
        os << ',' << s.tlb.l1Mpki(s.core.instructions) << ','
           << s.tlb.l2Mpki(s.core.instructions) << ',' << s.tlb.walks
           << ',' << s.tlb.walkCycles << ',' << s.tlb.stallCycles << ','
           << s.tlb.pfCrossDropped << ',' << s.tlb.pfCrossStalled << ','
           << s.tlb.pfCrossTranslated;
    }
    os << "\n";
}

} // namespace impsim
