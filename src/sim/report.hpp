/**
 * @file
 * Human-readable and CSV reporting of simulation results.
 */
#ifndef IMPSIM_SIM_REPORT_HPP
#define IMPSIM_SIM_REPORT_HPP

#include <iosfwd>
#include <string>

#include "common/stats.hpp"

namespace impsim {

/**
 * Writes a multi-section plain-text report (cores, caches, NoC, DRAM,
 * prefetch effectiveness) to @p os.
 * @param label heading, e.g. "spmv / IMP / 64 cores"
 */
void writeReport(std::ostream &os, const std::string &label,
                 const SimStats &s);

/**
 * Writes the CSV header matching writeCsvRow. @p with_tlb appends the
 * TLB column group; pass true iff any run in the experiment has the
 * TLB model enabled, so TLB-off outputs stay byte-identical to
 * pre-TLB builds.
 */
void writeCsvHeader(std::ostream &os, bool with_tlb = false);

/** Writes one CSV row for a run (@p with_tlb as for the header). */
void writeCsvRow(std::ostream &os, const std::string &label,
                 const SimStats &s, bool with_tlb = false);

} // namespace impsim

#endif // IMPSIM_SIM_REPORT_HPP
