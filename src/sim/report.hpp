/**
 * @file
 * Human-readable and CSV reporting of simulation results.
 */
#ifndef IMPSIM_SIM_REPORT_HPP
#define IMPSIM_SIM_REPORT_HPP

#include <iosfwd>
#include <string>

#include "common/stats.hpp"

namespace impsim {

/**
 * Writes a multi-section plain-text report (cores, caches, NoC, DRAM,
 * prefetch effectiveness) to @p os.
 * @param label heading, e.g. "spmv / IMP / 64 cores"
 */
void writeReport(std::ostream &os, const std::string &label,
                 const SimStats &s);

/** Writes the CSV header matching writeCsvRow. */
void writeCsvHeader(std::ostream &os);

/** Writes one CSV row for a run. */
void writeCsvRow(std::ostream &os, const std::string &label,
                 const SimStats &s);

} // namespace impsim

#endif // IMPSIM_SIM_REPORT_HPP
