/**
 * @file
 * The evaluation configurations of paper §5.4.
 */
#ifndef IMPSIM_SIM_PRESETS_HPP
#define IMPSIM_SIM_PRESETS_HPP

#include <string>
#include <vector>

#include "common/config.hpp"

namespace impsim {

/** Named machine configurations used throughout the evaluation. */
enum class ConfigPreset {
    Ideal,             ///< Every access hits L1 (§5.4 "Ideal").
    PerfectPref,       ///< Oracle prefetcher, real bandwidth.
    Baseline,          ///< Stream prefetcher only.
    SwPref,            ///< Baseline hardware + Mowry software pf.
    Imp,               ///< Stream + IMP, full cachelines.
    ImpPartialNoc,     ///< IMP + partial accessing in the NoC.
    ImpPartialNocDram, ///< IMP + partial accessing NoC and DRAM.
    Ghb,               ///< Stream + GHB correlation prefetcher.
    NoPrefetch,        ///< No prefetching at all (analysis only).
};

/** Human-readable preset name (bench table headers). */
const char *presetName(ConfigPreset p);

/** Every preset, in §5.4 order (CLI listings, config binding). */
const std::vector<ConfigPreset> &allPresets();

/**
 * Parses a preset name ("IMP", "Partial-NoC", ...).
 * @return false if @p name matches no preset; @p out is untouched.
 */
bool parsePresetName(const std::string &name, ConfigPreset &out);

/** Builds the SystemConfig for a preset at @p cores. */
SystemConfig makePreset(ConfigPreset p, std::uint32_t cores,
                        CoreModel model = CoreModel::InOrder);

/** True if workload traces should carry software prefetches. */
bool presetWantsSwPrefetch(ConfigPreset p);

} // namespace impsim

#endif // IMPSIM_SIM_PRESETS_HPP
