/**
 * @file
 * Perf-grid execution and JSON emission.
 */
#include "sim/perf_bench.hpp"

#include <chrono>
#include <cstdio>
#include <map>
#include <memory>
#include <ostream>
#include <tuple>

#include "common/logging.hpp"
#include "sim/presets.hpp"
#include "sim/system.hpp"
#include "workloads/workload.hpp"

namespace impsim {

namespace {

using Clock = std::chrono::steady_clock;

double
msSince(Clock::time_point t0)
{
    return std::chrono::duration<double, std::milli>(Clock::now() - t0)
        .count();
}

/** One grid point. */
struct Point
{
    AppId app;
    ConfigPreset preset;
    std::uint32_t cores;
    double scale;
};

std::vector<Point>
gridPoints(PerfGrid grid)
{
    std::vector<Point> pts;
    switch (grid) {
      case PerfGrid::Pinned:
        for (AppId app : kAllApps) {
            for (ConfigPreset p :
                 {ConfigPreset::Baseline, ConfigPreset::Imp}) {
                for (std::uint32_t cores : {1u, 16u})
                    pts.push_back(Point{app, p, cores, 1.0});
            }
        }
        return pts;
      case PerfGrid::Fig9:
        for (AppId app : kPaperApps) {
            for (ConfigPreset p :
                 {ConfigPreset::PerfectPref, ConfigPreset::Baseline,
                  ConfigPreset::Imp, ConfigPreset::SwPref})
                pts.push_back(Point{app, p, 16, 1.0});
        }
        return pts;
      case PerfGrid::Smoke:
        for (AppId app : {AppId::Pagerank, AppId::Graph500, AppId::Spmv,
                          AppId::Streaming}) {
            for (ConfigPreset p :
                 {ConfigPreset::Baseline, ConfigPreset::Imp}) {
                for (std::uint32_t cores : {1u, 16u})
                    pts.push_back(Point{app, p, cores, 0.25});
            }
        }
        return pts;
    }
    IMPSIM_PANIC("bad perf grid");
}

} // namespace

const char *
perfGridName(PerfGrid g)
{
    switch (g) {
      case PerfGrid::Pinned: return "pinned";
      case PerfGrid::Fig9: return "fig9";
      case PerfGrid::Smoke: return "smoke";
    }
    IMPSIM_PANIC("bad perf grid");
}

bool
parsePerfGridName(const std::string &name, PerfGrid &out)
{
    for (PerfGrid g :
         {PerfGrid::Pinned, PerfGrid::Fig9, PerfGrid::Smoke}) {
        if (name == perfGridName(g)) {
            out = g;
            return true;
        }
    }
    return false;
}

std::uint64_t
PerfGridResult::totalSimCycles() const
{
    std::uint64_t n = 0;
    for (const auto &r : runs)
        n += r.simCycles;
    return n;
}

std::uint64_t
PerfGridResult::totalAccesses() const
{
    std::uint64_t n = 0;
    for (const auto &r : runs)
        n += r.accesses;
    return n;
}

double
PerfGridResult::simsPerSec() const
{
    return simulateMs > 0 ? 1000.0 * runs.size() / simulateMs : 0.0;
}

double
PerfGridResult::cyclesPerSec() const
{
    return simulateMs > 0 ? 1000.0 * totalSimCycles() / simulateMs : 0.0;
}

PerfGridResult
runPerfGrid(PerfGrid grid, int reps)
{
    if (reps < 1)
        reps = 1;
    PerfGridResult out;
    out.name = perfGridName(grid);

    // Workloads are shared between presets that read the same traces,
    // and their generation cost is reported as its own phase.
    using WorkloadKey = std::tuple<AppId, std::uint32_t, bool, double>;
    std::map<WorkloadKey, std::unique_ptr<Workload>> workloads;
    auto workloadFor = [&](const Point &pt) -> const Workload & {
        bool swpf = presetWantsSwPrefetch(pt.preset);
        WorkloadKey key{pt.app, pt.cores, swpf, pt.scale};
        auto &slot = workloads[key];
        if (!slot) {
            WorkloadParams params;
            params.numCores = pt.cores;
            params.swPrefetch = swpf;
            params.scale = pt.scale;
            params.seed = 42;
            Clock::time_point t0 = Clock::now();
            slot = std::make_unique<Workload>(
                makeWorkload(pt.app, params));
            out.workloadMs += msSince(t0);
        }
        return *slot;
    };

    for (const Point &pt : gridPoints(grid)) {
        const Workload &w = workloadFor(pt);
        SystemConfig cfg = makePreset(pt.preset, pt.cores);

        PerfRunResult run;
        run.label = std::string(appName(pt.app)) + "/" +
                    presetName(pt.preset) + "/" +
                    std::to_string(pt.cores) + "c";
        for (int rep = 0; rep < reps; ++rep) {
            System sys(cfg, w.traces, *w.mem);
            Clock::time_point t0 = Clock::now();
            SimStats s = sys.run();
            double ms = msSince(t0);
            if (rep == 0 || ms < run.simulateMs)
                run.simulateMs = ms;
            if (rep == 0) {
                run.simCycles = s.cycles;
                run.instructions = s.core.instructions;
                run.accesses = s.core.memAccesses;
            } else {
                // The guardrail the whole perf effort leans on: faster
                // must never mean different.
                IMPSIM_CHECK(run.simCycles == s.cycles,
                             "perf rep changed simulated cycles");
            }
        }
        out.simulateMs += run.simulateMs;
        out.runs.push_back(std::move(run));
    }
    return out;
}

PerfBenchResult
runPerfBench(const std::vector<PerfGrid> &grids, int reps)
{
    PerfBenchResult r;
    for (PerfGrid g : grids)
        r.grids.push_back(runPerfGrid(g, reps));
    return r;
}

namespace {

void
jsonNum(std::ostream &os, double v)
{
    char buf[32];
    std::snprintf(buf, sizeof buf, "%.3f", v);
    os << buf;
}

} // namespace

void
writePerfJson(std::ostream &os, const PerfBenchResult &r)
{
    os << "{\n  \"schema\": \"impsim-perf-v1\",\n  \"grids\": [";
    bool first_grid = true;
    for (const PerfGridResult &g : r.grids) {
        os << (first_grid ? "\n" : ",\n");
        first_grid = false;
        os << "    {\n      \"name\": \"" << g.name << "\",\n";
        os << "      \"sims\": " << g.runs.size() << ",\n";
        os << "      \"phases\": {\"workload_ms\": ";
        jsonNum(os, g.workloadMs);
        os << ", \"simulate_ms\": ";
        jsonNum(os, g.simulateMs);
        os << "},\n";
        os << "      \"sims_per_sec\": ";
        jsonNum(os, g.simsPerSec());
        os << ",\n      \"sim_cycles\": " << g.totalSimCycles();
        os << ",\n      \"sim_cycles_per_sec\": ";
        jsonNum(os, g.cyclesPerSec());
        os << ",\n      \"accesses\": " << g.totalAccesses();
        os << ",\n      \"runs\": [";
        bool first_run = true;
        for (const PerfRunResult &run : g.runs) {
            os << (first_run ? "\n" : ",\n");
            first_run = false;
            os << "        {\"label\": \"" << run.label
               << "\", \"simulate_ms\": ";
            jsonNum(os, run.simulateMs);
            os << ", \"sim_cycles\": " << run.simCycles
               << ", \"instructions\": " << run.instructions
               << ", \"accesses\": " << run.accesses << "}";
        }
        os << "\n      ]\n    }";
    }
    os << "\n  ]\n}\n";
}

void
writePerfSummary(std::ostream &os, const PerfBenchResult &r)
{
    char buf[160];
    for (const PerfGridResult &g : r.grids) {
        std::snprintf(buf, sizeof buf,
                      "%-8s %3zu sims  %9.1f ms sim (+%.1f ms workload)"
                      "  %6.2f sims/s  %8.2f Mcycles/s\n",
                      g.name.c_str(), g.runs.size(), g.simulateMs,
                      g.workloadMs, g.simsPerSec(),
                      g.cyclesPerSec() / 1e6);
        os << buf;
    }
}

} // namespace impsim
