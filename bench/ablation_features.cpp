/**
 * @file
 * Design-choice ablations for the §3.3 optimisations: nested-loop PC
 * resynchronisation and multi-way/multi-level secondary indirections,
 * plus the IPD back-off.
 */
#include "harness.hpp"

using namespace impsim;
using namespace impsim::bench;

namespace {

const SimStats &
runVariant(AppId app, const char *tag)
{
    SystemConfig cfg = makePreset(ConfigPreset::Imp, 64);
    std::string t = tag;
    if (t == "noresync")
        cfg.imp.pcResync = false;
    else if (t == "nosecondary")
        cfg.imp.secondaryIndirection = false;
    else if (t == "nobackoff")
        cfg.imp.backoffInitial = 0;
    return runCustom(t, app, cfg);
}

} // namespace

int
main(int argc, char **argv)
{
    // Apps chosen per feature: nested loops (spmv, symgs), multi-way
    // (pagerank), multi-level (lsh), short loops (tri_count).
    const AppId kApps[] = {AppId::Spmv, AppId::Symgs, AppId::Pagerank,
                           AppId::Lsh, AppId::TriCount};
    const char *kTags[] = {"full", "noresync", "nosecondary",
                           "nobackoff"};

    for (AppId app : kApps) {
        for (const char *t : kTags) {
            registerRun(std::string("ablation/") + appName(app) + "/" +
                            t,
                        [app, t]() -> const SimStats & {
                            return runVariant(app, t);
                        });
        }
    }
    runBenchmarks(argc, argv);

    banner("Ablation (§3.3): IMP feature knockouts (64 cores, "
           "throughput vs full IMP)",
           "PC resync matters for nested loops; secondary "
           "indirections for pagerank (multi-way) and lsh "
           "(multi-level)");
    header({"full", "no-resync", "no-second", "no-backoff"});
    for (AppId app : kApps) {
        double ref = static_cast<double>(runVariant(app, "full").cycles);
        row(appName(app),
            {1.0,
             ref / static_cast<double>(
                       runVariant(app, "noresync").cycles),
             ref / static_cast<double>(
                       runVariant(app, "nosecondary").cycles),
             ref / static_cast<double>(
                       runVariant(app, "nobackoff").cycles)});
    }
    return 0;
}
