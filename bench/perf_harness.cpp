/**
 * @file
 * Standalone simulator-speed harness (docs/perf.md).
 *
 * Times the pinned perf grids and writes machine-readable JSON, so a
 * PR can record its `BENCH_<n>.json` with:
 *
 *   ./build/perf_harness --json BENCH_7.json
 *
 * Usage:
 *   perf_harness [--json FILE] [--grid NAME[,NAME...]] [--reps N]
 *
 * Grids: pinned (8 apps x {Base, IMP} x {1,16} cores), fig9 (the
 * 16-core Fig 9 panel), smoke (CI-sized subset). Default:
 * pinned,fig9. `impsim_cli --bench-json FILE` runs the same code.
 */
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "common/config_file.hpp"
#include "sim/perf_bench.hpp"

using namespace impsim;

int
main(int argc, char **argv)
{
    std::string json_path;
    std::string grids_arg = "pinned,fig9";
    int reps = 1;

    for (int i = 1; i < argc; ++i) {
        std::string a = argv[i];
        auto next = [&]() -> const char * {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "%s needs a value\n", a.c_str());
                std::exit(1);
            }
            return argv[++i];
        };
        if (a == "--json")
            json_path = next();
        else if (a == "--grid")
            grids_arg = next();
        else if (a == "--reps")
            reps = std::atoi(next());
        else {
            std::fprintf(stderr,
                         "usage: perf_harness [--json FILE] "
                         "[--grid pinned|fig9|smoke[,...]] [--reps N]\n");
            return 1;
        }
    }

    std::vector<PerfGrid> grids;
    for (const std::string &name : splitCommaList(grids_arg)) {
        PerfGrid g;
        if (!parsePerfGridName(name, g)) {
            std::fprintf(stderr, "unknown grid '%s'\n", name.c_str());
            return 1;
        }
        grids.push_back(g);
    }

    PerfBenchResult r = runPerfBench(grids, reps);
    writePerfSummary(std::cout, r);
    if (!json_path.empty()) {
        std::ofstream out(json_path);
        if (!out) {
            std::fprintf(stderr, "cannot write '%s'\n",
                         json_path.c_str());
            return 1;
        }
        writePerfJson(out, r);
        std::printf("wrote %s\n", json_path.c_str());
    }
    return 0;
}
