/**
 * @file
 * Fig 12: NoC and DRAM traffic of partial cacheline accessing
 * normalised to full cacheline accessing (64 cores).
 */
#include "harness.hpp"

using namespace impsim;
using namespace impsim::bench;

int
main(int argc, char **argv)
{
    // Simulate the whole app x preset grid in parallel.
    std::vector<PresetPoint> points;
    for (AppId app : paperApps()) {
        for (ConfigPreset p :
             {ConfigPreset::Imp, ConfigPreset::ImpPartialNocDram})
            points.push_back(PresetPoint{app, p, 64});
    }
    prewarmPresets(points);

    for (AppId app : paperApps()) {
        for (ConfigPreset p :
             {ConfigPreset::Imp, ConfigPreset::ImpPartialNocDram}) {
            registerRun(std::string("fig12/") + appName(app) + "/" +
                            presetName(p),
                        [app, p]() -> const SimStats & {
                            return run(app, p, 64);
                        });
        }
    }
    runBenchmarks(argc, argv);

    banner("Figure 12: traffic with partial accessing, normalised to "
           "full lines (64 cores)",
           "average NoC -16.7%, DRAM -7.5%; pagerank largest "
           "(-39%/-28%)");
    header({"noc", "dram"});
    std::vector<double> noc_all, dram_all;
    for (AppId app : paperApps()) {
        const SimStats &full = run(app, ConfigPreset::Imp, 64);
        const SimStats &part =
            run(app, ConfigPreset::ImpPartialNocDram, 64);
        double n = static_cast<double>(part.noc.bytes) /
                   static_cast<double>(full.noc.bytes);
        double d = static_cast<double>(part.dram.bytes()) /
                   static_cast<double>(full.dram.bytes());
        noc_all.push_back(n);
        dram_all.push_back(d);
        row(appName(app), {n, d});
    }
    row("geomean", {geomean(noc_all), geomean(dram_all)});
    return 0;
}
