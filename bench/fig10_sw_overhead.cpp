/**
 * @file
 * Fig 10: instruction overhead of software prefetching at 64 cores,
 * normalised to Baseline.
 */
#include "harness.hpp"

using namespace impsim;
using namespace impsim::bench;

int
main(int argc, char **argv)
{
    for (AppId app : paperApps()) {
        for (ConfigPreset p : {ConfigPreset::Baseline, ConfigPreset::Imp,
                               ConfigPreset::SwPref}) {
            registerRun(std::string("fig10/") + appName(app) + "/" +
                            presetName(p),
                        [app, p]() -> const SimStats & {
                            return run(app, p, 64);
                        });
        }
    }
    runBenchmarks(argc, argv);

    banner("Figure 10: instruction count normalised to Base (64 cores)",
           "SW prefetching costs ~29% more instructions than IMP on "
           "average (up to 2x)");
    header({"Base", "IMP", "SWPref"});
    std::vector<double> over;
    for (AppId app : paperApps()) {
        double base = static_cast<double>(
            run(app, ConfigPreset::Baseline, 64).core.instructions);
        double imp = static_cast<double>(
            run(app, ConfigPreset::Imp, 64).core.instructions);
        double sw = static_cast<double>(
            run(app, ConfigPreset::SwPref, 64).core.instructions);
        over.push_back(sw / imp);
        row(appName(app), {1.0, imp / base, sw / base});
    }
    std::printf("SWPref instructions vs IMP: geomean %.2fx\n",
                geomean(over));
    return 0;
}
