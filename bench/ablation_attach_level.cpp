/**
 * @file
 * Ablation: where in the hierarchy to attach IMP — at the L1 (the
 * paper's setup), at the L2 (training on the L1 miss stream, filling
 * the shared slices), or at both. Runs the graph/sparse workloads at
 * 64 cores with no other prefetching, normalised to the no-prefetch
 * machine, and reports each level's prefetch activity.
 */
#include "harness.hpp"

using namespace impsim;
using namespace impsim::bench;

namespace {

struct Variant
{
    const char *tag;     ///< runCustom key suffix + column header.
    const char *l1Spec;
    const char *l2Spec;
};

constexpr Variant kVariants[] = {
    {"attach_off", "none", "none"},
    {"attach_l1", "imp", "none"},
    {"attach_l2", "none", "imp"},
    {"attach_l1l2", "imp", "imp"},
};

/** The indirect-heavy graph/sparse apps (streaming is the control). */
const AppId kApps[] = {AppId::Graph500, AppId::Pagerank, AppId::Spmv,
                       AppId::Symgs, AppId::TriCount};

SystemConfig
variantConfig(const Variant &v)
{
    SystemConfig cfg = makePreset(ConfigPreset::NoPrefetch, 64);
    cfg.prefetcherSpec = v.l1Spec;
    cfg.l2PrefetcherSpec = v.l2Spec;
    return cfg;
}

const SimStats &
runVariant(AppId app, const Variant &v)
{
    return runCustom(v.tag, app, variantConfig(v));
}

} // namespace

int
main(int argc, char **argv)
{
    // One SweepRunner batch over the whole app x attach-level grid.
    std::vector<SweepPoint> points;
    for (AppId app : kApps) {
        for (const Variant &v : kVariants)
            points.push_back(
                SweepPoint{v.tag, app, variantConfig(v), false});
    }
    prewarm(points);

    for (AppId app : kApps) {
        for (const Variant &v : kVariants) {
            registerRun(std::string("attach/") + appName(app) + "/" +
                            v.tag,
                        [app, &v]() -> const SimStats & {
                            return runVariant(app, v);
                        });
        }
    }
    runBenchmarks(argc, argv);

    banner("Ablation: IMP attach level (64 cores, vs no prefetching)",
           "the paper attaches IMP at the L1; its design targets any "
           "level of the hierarchy");
    header({"L1", "L2", "L1+L2", "L2cov", "L2acc"});
    for (AppId app : kApps) {
        double off = static_cast<double>(
            runVariant(app, kVariants[0]).cycles);
        const SimStats &l2only = runVariant(app, kVariants[2]);
        auto speedup = [&](const Variant &v) {
            return off / static_cast<double>(runVariant(app, v).cycles);
        };
        row(appName(app),
            {speedup(kVariants[1]), speedup(kVariants[2]),
             speedup(kVariants[3]), l2only.l2.coverage(),
             l2only.l2.accuracy()});
    }
    return 0;
}
