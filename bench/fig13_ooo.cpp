/**
 * @file
 * Fig 13: IMP and partial accessing on in-order vs out-of-order
 * cores (pagerank and sgd, 64 cores), normalised to the out-of-order
 * baseline.
 */
#include "harness.hpp"

using namespace impsim;
using namespace impsim::bench;

int
main(int argc, char **argv)
{
    const AppId kApps[] = {AppId::Pagerank, AppId::Sgd};
    const ConfigPreset kCfgs[] = {ConfigPreset::Baseline,
                                  ConfigPreset::Imp,
                                  ConfigPreset::ImpPartialNocDram};

    // Simulate the whole app x preset x core-model grid in parallel.
    std::vector<PresetPoint> points;
    for (AppId app : kApps) {
        for (ConfigPreset p : kCfgs) {
            for (CoreModel m :
                 {CoreModel::InOrder, CoreModel::OutOfOrder})
                points.push_back(PresetPoint{app, p, 64, m});
        }
    }
    prewarmPresets(points);

    for (AppId app : kApps) {
        for (ConfigPreset p : kCfgs) {
            for (CoreModel m :
                 {CoreModel::InOrder, CoreModel::OutOfOrder}) {
                registerRun(
                    std::string("fig13/") + appName(app) + "/" +
                        presetName(p) +
                        (m == CoreModel::OutOfOrder ? "/ooo" : "/io"),
                    [app, p, m]() -> const SimStats & {
                        return run(app, p, 64, m);
                    });
            }
        }
    }
    runBenchmarks(argc, argv);

    banner("Figure 13: in-order vs out-of-order cores (64 cores, "
           "normalised to Base_ooo)",
           "OoO helps but IMP still provides large gains on top "
           "(20%/37% avg for IMP/partial on OoO)");
    header({"Base_io", "Base_ooo", "IMP_io", "IMP_ooo", "Part_io",
            "Part_ooo"});
    for (AppId app : kApps) {
        double ref = static_cast<double>(
            run(app, ConfigPreset::Baseline, 64,
                CoreModel::OutOfOrder)
                .cycles);
        auto thr = [&](ConfigPreset p, CoreModel m) {
            return ref / static_cast<double>(run(app, p, 64, m).cycles);
        };
        row(appName(app),
            {thr(ConfigPreset::Baseline, CoreModel::InOrder),
             thr(ConfigPreset::Baseline, CoreModel::OutOfOrder),
             thr(ConfigPreset::Imp, CoreModel::InOrder),
             thr(ConfigPreset::Imp, CoreModel::OutOfOrder),
             thr(ConfigPreset::ImpPartialNocDram, CoreModel::InOrder),
             thr(ConfigPreset::ImpPartialNocDram,
                 CoreModel::OutOfOrder)});
    }
    return 0;
}
