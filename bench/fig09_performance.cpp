/**
 * @file
 * Fig 9 (a/b/c): performance of Base / IMP / SWPref normalised to
 * Perfect Prefetching at 16, 64 and 256 cores.
 */
#include "harness.hpp"

using namespace impsim;
using namespace impsim::bench;

int
main(int argc, char **argv)
{
    const std::uint32_t kCores[] = {16, 64, 256};
    const ConfigPreset kCfgs[] = {
        ConfigPreset::PerfectPref, ConfigPreset::Baseline,
        ConfigPreset::Imp, ConfigPreset::SwPref};

    // Simulate the whole cores x app x preset grid in parallel.
    std::vector<PresetPoint> points;
    for (std::uint32_t cores : kCores) {
        for (AppId app : paperApps()) {
            for (ConfigPreset p : kCfgs)
                points.push_back(PresetPoint{app, p, cores});
        }
    }
    prewarmPresets(points);

    for (std::uint32_t cores : kCores) {
        for (AppId app : paperApps()) {
            for (ConfigPreset p : kCfgs) {
                registerRun(std::string("fig9/") +
                                std::to_string(cores) + "c/" +
                                appName(app) + "/" + presetName(p),
                            [app, p, cores]() -> const SimStats & {
                                return run(app, p, cores);
                            });
            }
        }
    }
    runBenchmarks(argc, argv);

    for (std::uint32_t cores : kCores) {
        banner("Figure 9: normalised throughput vs PerfPref (" +
                   std::to_string(cores) + " cores)",
               "IMP: 74%/56%/33% average speedup over Base at "
               "16/64/256 cores");
        header({"PerfPref", "Base", "IMP", "SWPref"});
        std::vector<double> speedups;
        for (AppId app : paperApps()) {
            double base = normThroughput(app, ConfigPreset::Baseline,
                                         cores);
            double imp = normThroughput(app, ConfigPreset::Imp, cores);
            double sw = normThroughput(app, ConfigPreset::SwPref,
                                       cores);
            speedups.push_back(imp / base);
            row(appName(app), {1.0, base, imp, sw});
        }
        double g = geomean(speedups);
        std::printf("IMP speedup over Base: geomean %.2fx "
                    "(+%.0f%%)\n",
                    g, (g - 1.0) * 100.0);
    }
    return 0;
}
