/**
 * @file
 * Fig 15: sensitivity to IPD size (2/4/8 entries) at 64 cores,
 * normalised to the default of 4.
 */
#include "harness.hpp"

using namespace impsim;
using namespace impsim::bench;

namespace {

SystemConfig
ipdConfig(std::uint32_t n)
{
    SystemConfig cfg = makePreset(ConfigPreset::Imp, 64);
    cfg.imp.ipdEntries = n;
    return cfg;
}

const SimStats &
runIpd(AppId app, std::uint32_t n)
{
    return runCustom("ipd" + std::to_string(n), app, ipdConfig(n));
}

} // namespace

int
main(int argc, char **argv)
{
    const std::uint32_t kSizes[] = {2, 4, 8};

    // One SweepRunner batch over the whole app x IPD-size grid.
    std::vector<SweepPoint> points;
    for (AppId app : paperApps()) {
        for (std::uint32_t n : kSizes)
            points.push_back(SweepPoint{"ipd" + std::to_string(n), app,
                                        ipdConfig(n), false});
    }
    prewarm(points);

    for (AppId app : paperApps()) {
        for (std::uint32_t n : kSizes) {
            registerRun(std::string("fig15/") + appName(app) + "/ipd" +
                            std::to_string(n),
                        [app, n]() -> const SimStats & {
                            return runIpd(app, n);
                        });
        }
    }
    runBenchmarks(argc, argv);

    banner("Figure 15: IPD size sensitivity (64 cores, vs IPD=4)",
           "flat except symgs (frequent redetections): 4 beats 2 by "
           "~3.5%");
    header({"IPD=2", "IPD=4", "IPD=8"});
    for (AppId app : paperApps()) {
        double ref = static_cast<double>(runIpd(app, 4).cycles);
        row(appName(app),
            {ref / static_cast<double>(runIpd(app, 2).cycles), 1.0,
             ref / static_cast<double>(runIpd(app, 8).cycles)});
    }
    return 0;
}
