/**
 * @file
 * Shared benchmark harness: memoised simulation runs, normalisation
 * helpers and paper-style table printing. Every bench binary
 * regenerates one table or figure of the paper (see DESIGN.md §3).
 */
#ifndef IMPSIM_BENCH_HARNESS_HPP
#define IMPSIM_BENCH_HARNESS_HPP

#include <functional>
#include <string>
#include <vector>

#include "common/config_file.hpp"
#include "common/stats.hpp"
#include "sim/presets.hpp"
#include "workloads/workload.hpp"

namespace impsim::bench {

/** The seven evaluated applications, in figure order. */
const std::vector<AppId> &paperApps();

/** Input scale used by all benches (1.0 = evaluation size). */
double benchScale();

/**
 * Runs (or returns the memoised result of) one simulation.
 * @param model core model (Fig 13 uses OutOfOrder)
 */
const SimStats &run(AppId app, ConfigPreset preset, std::uint32_t cores,
                    CoreModel model = CoreModel::InOrder);

/**
 * Runs a custom configuration; @p tag must uniquely identify it.
 * @param swpf generate the software-prefetch trace variant
 */
const SimStats &runCustom(const std::string &tag, AppId app,
                          const SystemConfig &cfg, bool swpf = false);

/** One point of a sweep, keyed exactly like runCustom(tag, app, ...). */
struct SweepPoint
{
    std::string tag;
    AppId app;
    SystemConfig cfg;
    bool swpf = false;
};

/**
 * Simulates every not-yet-memoised point in parallel on a SweepRunner
 * (IMPSIM_BENCH_JOBS workers, default hardware concurrency) and
 * memoises the results, so subsequent run()/runCustom() calls for the
 * same points return instantly. Stats are identical to serial runs —
 * jobs share nothing but const workloads.
 */
void prewarm(const std::vector<SweepPoint> &points);

/** One preset run, keyed exactly like run(app, preset, cores, model). */
struct PresetPoint
{
    AppId app;
    ConfigPreset preset;
    std::uint32_t cores;
    CoreModel model = CoreModel::InOrder;
};

/**
 * prewarm() for preset-keyed runs: fills the cache run() reads, so the
 * figure benches over preset grids (fig 9/11/12/13) simulate their
 * whole grid in parallel instead of serially on first use.
 */
void prewarmPresets(const std::vector<PresetPoint> &points);

/**
 * Source-tree path of a shipped experiment config
 * ("fig14.imp.ini" -> <source>/examples/configs/fig14.imp.ini).
 * IMPSIM_BENCH_CONFIG_DIR overrides the directory.
 */
std::string configPath(const std::string &name);

/**
 * Loads a declarative experiment config (docs/config_format.md),
 * expands its sweep and prewarms every run, memoised under
 * runCustom(run.label, ...). The harness's workload cache supplies
 * the inputs, so IMPSIM_BENCH_SCALE supersedes the file's scale and
 * seed (smoke runs shrink config-driven grids too). Config errors
 * terminate with the file:line diagnostic. Returns the expanded runs
 * (labels + configs) for the bench's table code to iterate.
 */
std::vector<ExperimentRun> prewarmConfig(const std::string &path);

/** cycles(PerfPref) / cycles(preset): Fig 9/11's normalisation. */
double normThroughput(AppId app, ConfigPreset preset,
                      std::uint32_t cores,
                      CoreModel model = CoreModel::InOrder);

/** Geometric mean. */
double geomean(const std::vector<double> &v);

// ---- Table formatting -------------------------------------------------

/** Prints the figure/table banner. */
void banner(const std::string &title, const std::string &paper_note);

/** Prints a header row: "app" followed by column names. */
void header(const std::vector<std::string> &cols);

/** Prints one row: label + numeric cells. */
void row(const std::string &label, const std::vector<double> &cells,
         int prec = 2);

/**
 * Registers a Google-Benchmark entry that executes @p fn once and
 * reports its simulated cycles; call before runBenchmarks().
 */
void registerRun(const std::string &name,
                 std::function<const SimStats &()> fn);

/** Initialises and runs Google Benchmark, then returns. */
void runBenchmarks(int argc, char **argv);

} // namespace impsim::bench

#endif // IMPSIM_BENCH_HARNESS_HPP
