/**
 * @file
 * Fig 16: sensitivity to the maximum indirect prefetch distance
 * (4/8/16/32) at 64 cores, normalised to the default of 16.
 */
#include "harness.hpp"

using namespace impsim;
using namespace impsim::bench;

namespace {

SystemConfig
distConfig(std::uint32_t d)
{
    SystemConfig cfg = makePreset(ConfigPreset::Imp, 64);
    cfg.imp.maxPrefetchDistance = d;
    return cfg;
}

const SimStats &
runDist(AppId app, std::uint32_t d)
{
    return runCustom("dist" + std::to_string(d), app, distConfig(d));
}

} // namespace

int
main(int argc, char **argv)
{
    const std::uint32_t kDists[] = {4, 8, 16, 32};

    // One SweepRunner batch over the whole app x distance grid.
    std::vector<SweepPoint> points;
    for (AppId app : paperApps()) {
        for (std::uint32_t d : kDists)
            points.push_back(SweepPoint{"dist" + std::to_string(d), app,
                                        distConfig(d), false});
    }
    prewarm(points);

    for (AppId app : paperApps()) {
        for (std::uint32_t d : kDists) {
            registerRun(std::string("fig16/") + appName(app) + "/d" +
                            std::to_string(d),
                        [app, d]() -> const SimStats & {
                            return runDist(app, d);
                        });
        }
    }
    runBenchmarks(argc, argv);

    banner("Figure 16: max prefetch distance sensitivity (64 cores, "
           "vs dist=16)",
           "long-stream apps (pagerank/graph500/spmv) like larger "
           "distances; short-loop apps (tri_count) can lose");
    header({"d=4", "d=8", "d=16", "d=32"});
    for (AppId app : paperApps()) {
        double ref = static_cast<double>(runDist(app, 16).cycles);
        row(appName(app),
            {ref / static_cast<double>(runDist(app, 4).cycles),
             ref / static_cast<double>(runDist(app, 8).cycles), 1.0,
             ref / static_cast<double>(runDist(app, 32).cycles)});
    }
    return 0;
}
