/**
 * @file
 * Bench harness implementation.
 */
#include "harness.hpp"

#include <benchmark/benchmark.h>

#include <cmath>
#include <cstdio>
#include <map>
#include <memory>

#include "sim/system.hpp"

namespace impsim::bench {

const std::vector<AppId> &
paperApps()
{
    static const std::vector<AppId> apps(kPaperApps.begin(),
                                         kPaperApps.end());
    return apps;
}

double
benchScale()
{
    // IMPSIM_BENCH_SCALE trims inputs for smoke runs of the harness.
    if (const char *env = std::getenv("IMPSIM_BENCH_SCALE"))
        return std::atof(env);
    return 1.0;
}

namespace {

struct WorkloadKey
{
    AppId app;
    std::uint32_t cores;
    bool swpf;

    bool
    operator<(const WorkloadKey &o) const
    {
        return std::tie(app, cores, swpf) <
               std::tie(o.app, o.cores, o.swpf);
    }
};

const Workload &
cachedWorkload(AppId app, std::uint32_t cores, bool swpf)
{
    static std::map<WorkloadKey, std::unique_ptr<Workload>> cache;
    auto &slot = cache[WorkloadKey{app, cores, swpf}];
    if (!slot) {
        WorkloadParams p;
        p.numCores = cores;
        p.swPrefetch = swpf;
        p.scale = benchScale();
        slot = std::make_unique<Workload>(makeWorkload(app, p));
    }
    return *slot;
}

const SimStats &
cachedSim(const std::string &key, AppId app, const SystemConfig &cfg,
          bool swpf)
{
    static std::map<std::string, std::unique_ptr<SimStats>> cache;
    auto &slot = cache[key];
    if (!slot) {
        const Workload &w = cachedWorkload(app, cfg.numCores, swpf);
        System sys(cfg, w.traces, *w.mem);
        slot = std::make_unique<SimStats>(sys.run());
    }
    return *slot;
}

} // namespace

const SimStats &
run(AppId app, ConfigPreset preset, std::uint32_t cores, CoreModel model)
{
    std::string key = std::string(appName(app)) + "/" +
                      presetName(preset) + "/" +
                      std::to_string(cores) +
                      (model == CoreModel::OutOfOrder ? "/ooo" : "");
    SystemConfig cfg = makePreset(preset, cores, model);
    return cachedSim(key, app, cfg, presetWantsSwPrefetch(preset));
}

const SimStats &
runCustom(const std::string &tag, AppId app, const SystemConfig &cfg,
          bool swpf)
{
    std::string key = std::string(appName(app)) + "/custom/" + tag;
    return cachedSim(key, app, cfg, swpf);
}

double
normThroughput(AppId app, ConfigPreset preset, std::uint32_t cores,
               CoreModel model)
{
    const SimStats &ref =
        run(app, ConfigPreset::PerfectPref, cores, model);
    const SimStats &s = run(app, preset, cores, model);
    return static_cast<double>(ref.cycles) /
           static_cast<double>(s.cycles);
}

double
geomean(const std::vector<double> &v)
{
    if (v.empty())
        return 0.0;
    double acc = 0.0;
    for (double x : v)
        acc += std::log(x);
    return std::exp(acc / static_cast<double>(v.size()));
}

void
banner(const std::string &title, const std::string &paper_note)
{
    std::printf("\n=============================================="
                "==============================\n");
    std::printf("%s\n", title.c_str());
    if (!paper_note.empty())
        std::printf("paper: %s\n", paper_note.c_str());
    std::printf("================================================"
                "============================\n");
}

void
header(const std::vector<std::string> &cols)
{
    std::printf("%-12s", "app");
    for (const auto &c : cols)
        std::printf(" %10s", c.c_str());
    std::printf("\n");
}

void
row(const std::string &label, const std::vector<double> &cells, int prec)
{
    std::printf("%-12s", label.c_str());
    for (double v : cells)
        std::printf(" %10.*f", prec, v);
    std::printf("\n");
}

void
registerRun(const std::string &name,
            std::function<const SimStats &()> fn)
{
    benchmark::RegisterBenchmark(
        name.c_str(),
        [fn](benchmark::State &state) {
            for (auto _ : state) {
                const SimStats &s = fn();
                state.counters["sim_cycles"] =
                    static_cast<double>(s.cycles);
                state.counters["ipc"] = s.ipc();
            }
        })
        ->Iterations(1)
        ->Unit(benchmark::kMillisecond);
}

void
runBenchmarks(int argc, char **argv)
{
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
}

} // namespace impsim::bench
