/**
 * @file
 * Bench harness implementation.
 */
#include "harness.hpp"

#include <benchmark/benchmark.h>

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <limits>
#include <map>
#include <memory>

#include "sim/sweep_runner.hpp"
#include "sim/system.hpp"

namespace impsim::bench {

const std::vector<AppId> &
paperApps()
{
    static const std::vector<AppId> apps(kPaperApps.begin(),
                                         kPaperApps.end());
    return apps;
}

double
benchScale()
{
    // IMPSIM_BENCH_SCALE trims inputs for smoke runs of the harness.
    if (const char *env = std::getenv("IMPSIM_BENCH_SCALE"))
        return std::atof(env);
    return 1.0;
}

namespace {

struct WorkloadKey
{
    AppId app;
    std::uint32_t cores;
    bool swpf;

    bool
    operator<(const WorkloadKey &o) const
    {
        return std::tie(app, cores, swpf) <
               std::tie(o.app, o.cores, o.swpf);
    }
};

const Workload &
cachedWorkload(AppId app, std::uint32_t cores, bool swpf)
{
    static std::map<WorkloadKey, std::unique_ptr<Workload>> cache;
    auto &slot = cache[WorkloadKey{app, cores, swpf}];
    if (!slot) {
        WorkloadParams p;
        p.numCores = cores;
        p.swPrefetch = swpf;
        p.scale = benchScale();
        slot = std::make_unique<Workload>(makeWorkload(app, p));
    }
    return *slot;
}

std::map<std::string, std::unique_ptr<SimStats>> &
simCache()
{
    static std::map<std::string, std::unique_ptr<SimStats>> cache;
    return cache;
}

const SimStats &
cachedSim(const std::string &key, AppId app, const SystemConfig &cfg,
          bool swpf)
{
    auto &slot = simCache()[key];
    if (!slot) {
        const Workload &w = cachedWorkload(app, cfg.numCores, swpf);
        System sys(cfg, w.traces, *w.mem);
        slot = std::make_unique<SimStats>(sys.run());
    }
    return *slot;
}

std::string
customKey(AppId app, const std::string &tag)
{
    return std::string(appName(app)) + "/custom/" + tag;
}

std::string
presetKey(AppId app, ConfigPreset preset, std::uint32_t cores,
          CoreModel model)
{
    return std::string(appName(app)) + "/" + presetName(preset) + "/" +
           std::to_string(cores) +
           (model == CoreModel::OutOfOrder ? "/ooo" : "");
}

/** Parallel-runs @p jobs and memoises each result under @p keys. */
void
runAndMemoise(std::vector<SweepJob> &&jobs,
              std::vector<std::string> &&keys)
{
    if (jobs.empty())
        return;

    unsigned workers = 0;
    if (const char *env = std::getenv("IMPSIM_BENCH_JOBS")) {
        std::string v = env;
        bool ok = !v.empty() &&
                  v.find_first_not_of("0123456789") == std::string::npos;
        if (ok) {
            try {
                unsigned long ul = std::stoul(v);
                ok = ul <= std::numeric_limits<unsigned>::max();
                if (ok)
                    workers = static_cast<unsigned>(ul);
            } catch (const std::exception &) {
                ok = false;
            }
        }
        if (!ok) {
            std::fprintf(stderr,
                         "IMPSIM_BENCH_JOBS must be a non-negative "
                         "integer (<= %u), got '%s'\n",
                         std::numeric_limits<unsigned>::max(), env);
            std::exit(1);
        }
    }
    std::vector<SweepResult> results = SweepRunner(workers).run(jobs);
    for (std::size_t i = 0; i < results.size(); ++i)
        simCache()[keys[i]] =
            std::make_unique<SimStats>(std::move(results[i].stats));
}

} // namespace

const SimStats &
run(AppId app, ConfigPreset preset, std::uint32_t cores, CoreModel model)
{
    SystemConfig cfg = makePreset(preset, cores, model);
    return cachedSim(presetKey(app, preset, cores, model), app, cfg,
                     presetWantsSwPrefetch(preset));
}

const SimStats &
runCustom(const std::string &tag, AppId app, const SystemConfig &cfg,
          bool swpf)
{
    return cachedSim(customKey(app, tag), app, cfg, swpf);
}

void
prewarm(const std::vector<SweepPoint> &points)
{
    // Workload generation shares a cache; do it on this thread, then
    // fan the independent simulations out.
    std::vector<SweepJob> jobs;
    std::vector<std::string> keys;
    for (const SweepPoint &p : points) {
        std::string key = customKey(p.app, p.tag);
        if (simCache().count(key) != 0)
            continue;
        const Workload &w = cachedWorkload(p.app, p.cfg.numCores, p.swpf);
        jobs.push_back(SweepJob{key, p.cfg, &w.traces, w.mem.get()});
        keys.push_back(std::move(key));
    }
    runAndMemoise(std::move(jobs), std::move(keys));
}

void
prewarmPresets(const std::vector<PresetPoint> &points)
{
    std::vector<SweepJob> jobs;
    std::vector<std::string> keys;
    for (const PresetPoint &p : points) {
        std::string key = presetKey(p.app, p.preset, p.cores, p.model);
        if (simCache().count(key) != 0)
            continue;
        bool swpf = presetWantsSwPrefetch(p.preset);
        const Workload &w = cachedWorkload(p.app, p.cores, swpf);
        jobs.push_back(SweepJob{key, makePreset(p.preset, p.cores, p.model),
                                &w.traces, w.mem.get()});
        keys.push_back(std::move(key));
    }
    runAndMemoise(std::move(jobs), std::move(keys));
}

std::string
configPath(const std::string &name)
{
    std::string dir = IMPSIM_SOURCE_DIR "/examples/configs";
    if (const char *env = std::getenv("IMPSIM_BENCH_CONFIG_DIR"))
        dir = env;
    return dir + "/" + name;
}

std::vector<ExperimentRun>
prewarmConfig(const std::string &path)
{
    std::vector<ExperimentRun> runs;
    try {
        runs = bindExperiment(ConfigFile::parseFile(path)).runs;
    } catch (const ConfigError &e) {
        std::fprintf(stderr, "%s\n", e.what());
        std::exit(1);
    }
    std::vector<SweepPoint> points;
    for (const ExperimentRun &r : runs)
        points.push_back(SweepPoint{r.label, r.app, r.cfg, r.swPrefetch});
    prewarm(points);
    return runs;
}

double
normThroughput(AppId app, ConfigPreset preset, std::uint32_t cores,
               CoreModel model)
{
    const SimStats &ref =
        run(app, ConfigPreset::PerfectPref, cores, model);
    const SimStats &s = run(app, preset, cores, model);
    return static_cast<double>(ref.cycles) /
           static_cast<double>(s.cycles);
}

double
geomean(const std::vector<double> &v)
{
    if (v.empty())
        return 0.0;
    double acc = 0.0;
    for (double x : v)
        acc += std::log(x);
    return std::exp(acc / static_cast<double>(v.size()));
}

void
banner(const std::string &title, const std::string &paper_note)
{
    std::printf("\n=============================================="
                "==============================\n");
    std::printf("%s\n", title.c_str());
    if (!paper_note.empty())
        std::printf("paper: %s\n", paper_note.c_str());
    std::printf("================================================"
                "============================\n");
}

void
header(const std::vector<std::string> &cols)
{
    std::printf("%-12s", "app");
    for (const auto &c : cols)
        std::printf(" %10s", c.c_str());
    std::printf("\n");
}

void
row(const std::string &label, const std::vector<double> &cells, int prec)
{
    std::printf("%-12s", label.c_str());
    for (double v : cells)
        std::printf(" %10.*f", prec, v);
    std::printf("\n");
}

void
registerRun(const std::string &name,
            std::function<const SimStats &()> fn)
{
    benchmark::RegisterBenchmark(
        name.c_str(),
        [fn](benchmark::State &state) {
            for (auto _ : state) {
                const SimStats &s = fn();
                state.counters["sim_cycles"] =
                    static_cast<double>(s.cycles);
                state.counters["ipc"] = s.ipc();
            }
        })
        ->Iterations(1)
        ->Unit(benchmark::kMillisecond);
}

void
runBenchmarks(int argc, char **argv)
{
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
}

} // namespace impsim::bench
