/**
 * @file
 * Table 3: prefetch coverage, accuracy and normalised memory latency
 * for the streaming prefetcher alone vs streaming + IMP (64 cores).
 */
#include "harness.hpp"

using namespace impsim;
using namespace impsim::bench;

int
main(int argc, char **argv)
{
    for (AppId app : paperApps()) {
        for (ConfigPreset p : {ConfigPreset::Baseline, ConfigPreset::Imp,
                               ConfigPreset::PerfectPref}) {
            registerRun(std::string("table3/") + appName(app) + "/" +
                            presetName(p),
                        [app, p]() -> const SimStats & {
                            return run(app, p, 64);
                        });
        }
    }
    runBenchmarks(argc, argv);

    banner("Table 3: prefetcher effectiveness (64 cores)",
           "stream alone: cov 0.28 / acc 0.79 / lat 3.64; "
           "stream+IMP: cov 0.85 / acc 0.85 / lat 2.15 (averages)");
    header({"cov.str", "acc.str", "lat.str", "cov.imp", "acc.imp",
            "lat.imp"});
    std::vector<double> cs, as, ls, ci, ai, li;
    for (AppId app : paperApps()) {
        const SimStats &base = run(app, ConfigPreset::Baseline, 64);
        const SimStats &imp = run(app, ConfigPreset::Imp, 64);
        const SimStats &pp = run(app, ConfigPreset::PerfectPref, 64);
        double lat_ref = pp.avgLoadLatency();
        double lat_b = base.avgLoadLatency() / lat_ref;
        double lat_i = imp.avgLoadLatency() / lat_ref;
        cs.push_back(base.l1.coverage());
        as.push_back(base.l1.accuracy());
        ls.push_back(lat_b);
        ci.push_back(imp.l1.coverage());
        ai.push_back(imp.l1.accuracy());
        li.push_back(lat_i);
        row(appName(app), {base.l1.coverage(), base.l1.accuracy(),
                           lat_b, imp.l1.coverage(), imp.l1.accuracy(),
                           lat_i});
    }
    auto avg = [](const std::vector<double> &v) {
        double s = 0;
        for (double x : v)
            s += x;
        return s / static_cast<double>(v.size());
    };
    row("average", {avg(cs), avg(as), avg(ls), avg(ci), avg(ai),
                    avg(li)});
    return 0;
}
