/**
 * @file
 * §5.4 ablation: a Global History Buffer correlation prefetcher on
 * top of the stream prefetcher provides no benefit on these
 * workloads and wastes traffic, while IMP does not.
 */
#include "harness.hpp"

using namespace impsim;
using namespace impsim::bench;

int
main(int argc, char **argv)
{
    for (AppId app : paperApps()) {
        for (ConfigPreset p : {ConfigPreset::Baseline, ConfigPreset::Ghb,
                               ConfigPreset::Imp}) {
            registerRun(std::string("ghb/") + appName(app) + "/" +
                            presetName(p),
                        [app, p]() -> const SimStats & {
                            return run(app, p, 64);
                        });
        }
    }
    runBenchmarks(argc, argv);

    banner("Ablation (§5.4): GHB correlation prefetching vs IMP "
           "(64 cores)",
           "GHB cannot capture first-visit indirect patterns and adds "
           "useless traffic");
    header({"GHB.spdup", "IMP.spdup", "GHB.noc", "GHB.dram"});
    std::vector<double> ghb_gain, imp_gain;
    for (AppId app : paperApps()) {
        const SimStats &base = run(app, ConfigPreset::Baseline, 64);
        const SimStats &ghb = run(app, ConfigPreset::Ghb, 64);
        const SimStats &imp = run(app, ConfigPreset::Imp, 64);
        double g = static_cast<double>(base.cycles) /
                   static_cast<double>(ghb.cycles);
        double i = static_cast<double>(base.cycles) /
                   static_cast<double>(imp.cycles);
        ghb_gain.push_back(g);
        imp_gain.push_back(i);
        row(appName(app),
            {g, i,
             static_cast<double>(ghb.noc.bytes) /
                 static_cast<double>(base.noc.bytes),
             static_cast<double>(ghb.dram.bytes()) /
                 static_cast<double>(base.dram.bytes())});
    }
    std::printf("geomean speedup: GHB %.3fx vs IMP %.3fx\n",
                geomean(ghb_gain), geomean(imp_gain));
    return 0;
}
