/**
 * @file
 * §6.4: hardware storage cost of IMP, computed analytically from the
 * configured table geometries, compared against the paper's numbers
 * (PT < 2 Kbit, IPD 3.5 Kbit, total ~5.5 Kbit / 0.7 KB; GP 3.4 Kbit;
 * sector-cache valid bits 1.6%/0.4% of L1/L2).
 */
#include <cstdio>

#include "harness.hpp"

#include "common/intmath.hpp"

using namespace impsim;
using namespace impsim::bench;

namespace {

struct StorageModel
{
    std::uint64_t ptBits;
    std::uint64_t ipdBits;
    std::uint64_t gpBits;
    double l1ValidOverhead;
    double l2ValidOverhead;
};

StorageModel
computeStorage(const SystemConfig &cfg)
{
    StorageModel m{};
    // PT indirect half (§6.4.1): enable(1) + shift(3) + BaseAddr(48) +
    // index(48) + hit cnt(3) + distance(5) + links (Fig 6: type 2 +
    // 3 entry pointers of log2(PT)) + rw predictor(2).
    std::uint64_t ptr = ceilLog2(cfg.imp.ptEntries);
    std::uint64_t ind_entry =
        1 + 3 + kAddrBits + kAddrBits + 3 + 5 + 2 + 3 * ptr + 2;
    m.ptBits = std::uint64_t{cfg.imp.ptEntries} * ind_entry;

    // IPD (§6.4.1): two indices (48 each) + baseaddr array
    // [shifts][slots] of 48 + pt id + miss counter.
    std::uint64_t ipd_entry =
        2 * kAddrBits +
        std::uint64_t{cfg.imp.shifts.size()} * cfg.imp.baseAddrSlots *
            kAddrBits +
        ptr + 3;
    m.ipdBits = std::uint64_t{cfg.imp.ipdEntries} * ipd_entry;

    // GP (§6.4.2): per entry: samples * (tag 42 + touch bits) +
    // tot_sector(6) + min_granu(4) + granu(4) + evict(3).
    std::uint64_t sectors = kLineSize / cfg.gp.l1SectorBytes;
    std::uint64_t sample = (kAddrBits - kLineBits) + sectors;
    std::uint64_t gp_entry =
        std::uint64_t{cfg.gp.samples} * sample + 6 + 4 + 4 + 3;
    m.gpBits = std::uint64_t{cfg.imp.ptEntries} * gp_entry;

    // Sector-cache valid bits relative to data capacity.
    m.l1ValidOverhead =
        static_cast<double>(kLineSize / cfg.gp.l1SectorBytes) /
        (kLineSize * 8);
    m.l2ValidOverhead =
        static_cast<double>(kLineSize / cfg.gp.l2SectorBytes) /
        (kLineSize * 8);
    return m;
}

} // namespace

int
main(int, char **)
{
    SystemConfig cfg = makePreset(ConfigPreset::ImpPartialNocDram, 64);
    StorageModel m = computeStorage(cfg);

    banner("Section 6.4: storage cost",
           "paper: PT < 2 Kbit, IPD 3.5 Kbit, IMP total 5.5 Kbit "
           "(~0.7 KB); GP 3.4 Kbit (~420 B); valid bits 1.6%/0.4%");
    std::printf("%-34s %10.2f Kbit  (paper: < 2)\n",
                "Prefetch Table (indirect halves)",
                m.ptBits / 1024.0);
    std::printf("%-34s %10.2f Kbit  (paper: 3.5)\n",
                "Indirect Pattern Detector", m.ipdBits / 1024.0);
    std::printf("%-34s %10.2f Kbit  (paper: 5.5)\n", "IMP total",
                (m.ptBits + m.ipdBits) / 1024.0);
    std::printf("%-34s %10.2f KB    (paper: ~0.7)\n", "IMP total",
                (m.ptBits + m.ipdBits) / 8.0 / 1024.0);
    std::printf("%-34s %10.2f Kbit  (paper: 3.4)\n",
                "Granularity Predictor", m.gpBits / 1024.0);
    std::printf("%-34s %9.1f%%   (paper: 1.6%%)\n",
                "L1 sector valid-bit overhead",
                m.l1ValidOverhead * 100.0);
    std::printf("%-34s %9.1f%%   (paper: 0.4%%)\n",
                "L2 sector valid-bit overhead",
                m.l2ValidOverhead * 100.0);

    // Sensitivity: halving the tables (§6.4.1 suggestion).
    SystemConfig small = cfg;
    small.imp.ptEntries = 8;
    small.imp.ipdEntries = 2;
    StorageModel ms = computeStorage(small);
    std::printf("%-34s %10.2f Kbit\n", "IMP total @ PT=8/IPD=2",
                (ms.ptBits + ms.ipdBits) / 1024.0);
    return 0;
}
