/**
 * @file
 * Fig 2: runtime normalised to Ideal, split into stall cycles from
 * indirect accesses vs everything else, plus the PerfPref bound.
 */
#include "harness.hpp"

using namespace impsim;
using namespace impsim::bench;

int
main(int argc, char **argv)
{
    for (AppId app : paperApps()) {
        for (ConfigPreset p : {ConfigPreset::Ideal,
                               ConfigPreset::Baseline,
                               ConfigPreset::PerfectPref}) {
            registerRun(std::string("fig2/") + appName(app) + "/" +
                            presetName(p),
                        [app, p]() -> const SimStats & {
                            return run(app, p, 64);
                        });
        }
    }
    runBenchmarks(argc, argv);

    banner("Figure 2: runtime normalised to Ideal (64 cores)",
           "indirect stalls dominate; PerfPref ~1.8x Ideal on average "
           "(bandwidth bound)");
    header({"norm.rt", "indirect", "other", "PerfPref"});
    std::vector<double> pp_all;
    for (AppId app : paperApps()) {
        double ideal = static_cast<double>(
            run(app, ConfigPreset::Ideal, 64).cycles);
        const SimStats &base = run(app, ConfigPreset::Baseline, 64);
        double norm = static_cast<double>(base.cycles) / ideal;
        // Split the excess over Ideal by stall attribution.
        double ind_stall = static_cast<double>(
            base.core.stallCycles[static_cast<int>(
                AccessType::Indirect)]);
        double tot_stall = ind_stall;
        for (int t = 0; t < kNumAccessTypes; ++t)
            if (t != static_cast<int>(AccessType::Indirect))
                tot_stall +=
                    static_cast<double>(base.core.stallCycles[t]);
        double excess = norm - 1.0;
        double ind_part =
            tot_stall > 0 ? excess * ind_stall / tot_stall : 0.0;
        double pp = static_cast<double>(
                        run(app, ConfigPreset::PerfectPref, 64).cycles) /
                    ideal;
        pp_all.push_back(pp);
        row(appName(app), {norm, 1.0 + ind_part, norm - 1.0 - ind_part,
                           pp});
    }
    row("avg(PerfPref)", {geomean(pp_all)});
    return 0;
}
