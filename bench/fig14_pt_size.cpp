/**
 * @file
 * Fig 14: sensitivity to Prefetch Table size (8/16/32 entries) at 64
 * cores, normalised to the default of 16. The grid is declared as
 * data (examples/configs/fig14.imp.ini) and expanded by the config
 * binder — this bench only formats the table.
 */
#include "harness.hpp"

#include <cstdio>
#include <cstdlib>

using namespace impsim;
using namespace impsim::bench;

namespace {

std::vector<ExperimentRun> grid;

const SimStats &
statsFor(AppId app, std::uint32_t pt)
{
    for (const ExperimentRun &r : grid) {
        if (r.app == app && r.cfg.imp.ptEntries == pt)
            return runCustom(r.label, r.app, r.cfg, r.swPrefetch);
    }
    std::fprintf(stderr, "fig14 grid is missing %s at pt=%u\n",
                 appName(app), pt);
    std::exit(1);
}

} // namespace

int
main(int argc, char **argv)
{
    // Simulate the whole app x PT-size grid in parallel.
    grid = prewarmConfig(configPath("fig14.imp.ini"));

    for (const ExperimentRun &r : grid) {
        registerRun("fig14/" + r.label, [r]() -> const SimStats & {
            return runCustom(r.label, r.app, r.cfg, r.swPrefetch);
        });
    }
    runBenchmarks(argc, argv);

    banner("Figure 14: PT size sensitivity (64 cores, vs PT=16)",
           "mostly flat; tri_count and lsh benefit from 16 over 8");
    header({"PT=8", "PT=16", "PT=32"});
    for (AppId app : paperApps()) {
        double ref = static_cast<double>(statsFor(app, 16).cycles);
        row(appName(app),
            {ref / static_cast<double>(statsFor(app, 8).cycles), 1.0,
             ref / static_cast<double>(statsFor(app, 32).cycles)});
    }
    return 0;
}
