/**
 * @file
 * Fig 14: sensitivity to Prefetch Table size (8/16/32 entries) at 64
 * cores, normalised to the default of 16.
 */
#include "harness.hpp"

using namespace impsim;
using namespace impsim::bench;

namespace {

SystemConfig
ptConfig(std::uint32_t pt)
{
    SystemConfig cfg = makePreset(ConfigPreset::Imp, 64);
    cfg.imp.ptEntries = pt;
    return cfg;
}

const SimStats &
runPt(AppId app, std::uint32_t pt)
{
    return runCustom("pt" + std::to_string(pt), app, ptConfig(pt));
}

} // namespace

int
main(int argc, char **argv)
{
    const std::uint32_t kSizes[] = {8, 16, 32};

    // One SweepRunner batch over the whole app x PT-size grid.
    std::vector<SweepPoint> points;
    for (AppId app : paperApps()) {
        for (std::uint32_t pt : kSizes)
            points.push_back(SweepPoint{"pt" + std::to_string(pt), app,
                                        ptConfig(pt), false});
    }
    prewarm(points);

    for (AppId app : paperApps()) {
        for (std::uint32_t pt : kSizes) {
            registerRun(std::string("fig14/") + appName(app) + "/pt" +
                            std::to_string(pt),
                        [app, pt]() -> const SimStats & {
                            return runPt(app, pt);
                        });
        }
    }
    runBenchmarks(argc, argv);

    banner("Figure 14: PT size sensitivity (64 cores, vs PT=16)",
           "mostly flat; tri_count and lsh benefit from 16 over 8");
    header({"PT=8", "PT=16", "PT=32"});
    for (AppId app : paperApps()) {
        double ref = static_cast<double>(runPt(app, 16).cycles);
        row(appName(app),
            {ref / static_cast<double>(runPt(app, 8).cycles), 1.0,
             ref / static_cast<double>(runPt(app, 32).cycles)});
    }
    return 0;
}
