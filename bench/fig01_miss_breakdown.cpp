/**
 * @file
 * Fig 1: L1 cache-miss breakdown by access type (indirect / stream /
 * other) on the 64-core baseline.
 */
#include "harness.hpp"

using namespace impsim;
using namespace impsim::bench;

int
main(int argc, char **argv)
{
    for (AppId app : paperApps()) {
        registerRun(std::string("fig1/") + appName(app), [app]() -> const SimStats & {
            return run(app, ConfigPreset::Baseline, 64);
        });
    }
    runBenchmarks(argc, argv);

    banner("Figure 1: cache miss breakdown (Base, 64 cores)",
           "indirect accesses cause ~60% of L1 misses on average");
    header({"indirect", "stream", "other"});
    std::vector<double> ind_all;
    for (AppId app : paperApps()) {
        const SimStats &s = run(app, ConfigPreset::Baseline, 64);
        double total = static_cast<double>(s.l1.misses);
        if (total == 0)
            total = 1;
        double ind =
            s.l1.missesByType[static_cast<int>(AccessType::Indirect)] /
            total;
        double str =
            s.l1.missesByType[static_cast<int>(AccessType::Stream)] /
            total;
        double oth =
            s.l1.missesByType[static_cast<int>(AccessType::Other)] /
            total;
        ind_all.push_back(ind);
        row(appName(app), {ind, str, oth});
    }
    double avg = 0;
    for (double v : ind_all)
        avg += v;
    avg /= static_cast<double>(ind_all.size());
    row("avg(indirect)", {avg});
    return 0;
}
