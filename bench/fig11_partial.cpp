/**
 * @file
 * Fig 11 (a/b/c): IMP with partial cacheline accessing (NoC-only and
 * NoC+DRAM) vs plain IMP and Ideal, normalised to PerfPref, at 16,
 * 64 and 256 cores.
 */
#include "harness.hpp"

using namespace impsim;
using namespace impsim::bench;

int
main(int argc, char **argv)
{
    const std::uint32_t kCores[] = {16, 64, 256};
    const ConfigPreset kCfgs[] = {
        ConfigPreset::Imp, ConfigPreset::ImpPartialNoc,
        ConfigPreset::ImpPartialNocDram, ConfigPreset::Ideal,
        ConfigPreset::PerfectPref};

    // Simulate the whole cores x app x preset grid in parallel.
    std::vector<PresetPoint> points;
    for (std::uint32_t cores : kCores) {
        for (AppId app : paperApps()) {
            for (ConfigPreset p : kCfgs)
                points.push_back(PresetPoint{app, p, cores});
        }
    }
    prewarmPresets(points);

    for (std::uint32_t cores : kCores) {
        for (AppId app : paperApps()) {
            for (ConfigPreset p : kCfgs) {
                registerRun(std::string("fig11/") +
                                std::to_string(cores) + "c/" +
                                appName(app) + "/" + presetName(p),
                            [app, p, cores]() -> const SimStats & {
                                return run(app, p, cores);
                            });
            }
        }
    }
    runBenchmarks(argc, argv);

    for (std::uint32_t cores : kCores) {
        banner("Figure 11: partial cacheline accessing (" +
                   std::to_string(cores) + " cores, vs PerfPref)",
               "partial NoC+DRAM adds 9.5%/9.4%/6.9% over IMP at "
               "16/64/256 cores; hurts tri_count/graph500/lsh/symgs "
               "at DRAM");
        header({"IMP", "Part.NoC", "Part.N+D", "Ideal"});
        std::vector<double> gain;
        for (AppId app : paperApps()) {
            double imp = normThroughput(app, ConfigPreset::Imp, cores);
            double pn =
                normThroughput(app, ConfigPreset::ImpPartialNoc, cores);
            double pd = normThroughput(
                app, ConfigPreset::ImpPartialNocDram, cores);
            double ideal =
                normThroughput(app, ConfigPreset::Ideal, cores);
            gain.push_back(pd / imp);
            row(appName(app), {imp, pn, pd, ideal});
        }
        std::printf("Partial NoC+DRAM vs IMP: geomean %.3fx\n",
                    geomean(gain));
    }
    return 0;
}
