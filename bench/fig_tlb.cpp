/**
 * @file
 * TLB panel (docs/tlb.md): what turning on the virtual-memory model
 * costs IMP, at 64 cores, across page sizes. Columns are absolute IPC
 * and IMP L1 coverage for translation-off, 4 KiB pages and 2 MiB
 * pages; the paper's figures all assume free translation, so "off" is
 * the reference the other columns discount.
 */
#include "harness.hpp"

#include <cstdio>

using namespace impsim;
using namespace impsim::bench;

namespace {

/** @p page_bytes == 0 means translation off. */
SystemConfig
tlbCfg(std::uint64_t page_bytes)
{
    SystemConfig cfg = makePreset(ConfigPreset::Imp, 64);
    if (page_bytes != 0) {
        cfg.tlb.enable = true;
        cfg.tlb.pageBytes = page_bytes;
    }
    return cfg;
}

const char *
tagFor(std::uint64_t page_bytes)
{
    return page_bytes == 0        ? "tlb-off"
           : page_bytes == 4096   ? "tlb-4k"
                                  : "tlb-2m";
}

const std::uint64_t kVariants[] = {0, 4096, std::uint64_t{2} << 20};

} // namespace

int
main(int argc, char **argv)
{
    std::vector<SweepPoint> grid;
    for (AppId app : paperApps()) {
        for (std::uint64_t pb : kVariants)
            grid.push_back(SweepPoint{tagFor(pb), app, tlbCfg(pb)});
    }
    prewarm(grid);

    for (const SweepPoint &p : grid) {
        registerRun(std::string("fig_tlb/") + appName(p.app) + "/" +
                        p.tag,
                    [p]() -> const SimStats & {
                        return runCustom(p.tag, p.app, p.cfg);
                    });
    }
    runBenchmarks(argc, argv);

    banner("TLB panel: IMP under virtual memory (64 cores; IPC and "
           "L1 coverage, translation off vs 4 KiB vs 2 MiB pages)",
           "huge pages recover most of the 4 KiB translation cost; "
           "coverage moves little because dropped page-crossers are "
           "a thin tail of IMP's issue stream");
    header({"ipc", "ipc-4k", "ipc-2m", "cov", "cov-4k", "cov-2m"});
    for (AppId app : paperApps()) {
        const SimStats &off = runCustom(tagFor(0), app, tlbCfg(0));
        const SimStats &p4k =
            runCustom(tagFor(4096), app, tlbCfg(4096));
        const SimStats &p2m = runCustom(tagFor(std::uint64_t{2} << 20),
                                        app,
                                        tlbCfg(std::uint64_t{2} << 20));
        row(appName(app),
            {off.ipc(), p4k.ipc(), p2m.ipc(), off.l1.coverage(),
             p4k.l1.coverage(), p2m.l1.coverage()});
    }
    return 0;
}
