#!/usr/bin/env python3
"""impsim domain lint: grep/tokenizer-style checks for the simulator's
standing invariants, with file:line diagnostics.

Rules (docs/static_analysis.md has the rationale and suppression
policy):

  no-unordered-container   std::unordered_map/set anywhere but
                           src/common/flat_map.hpp: hot paths use
                           FlatHashMap (PR 6), and unordered_*
                           iteration order is a per-libstdc++
                           accident the goldens must never depend on.
  no-wallclock-entropy     rand()/srand()/time()/clock(),
                           std::random_device, std::mt19937,
                           system_clock anywhere but
                           src/common/rng.hpp: all randomness flows
                           through the seeded SplitMix64 Rng so runs
                           replay bit-identically.
  no-unsorted-flat-emission  a range-for over a FlatHashMap member
                           feeding stream/printf/CSV emission within
                           a few lines, with no ordering sort in
                           between: FlatHashMap iterates in table
                           order, which insertion history — not the
                           key set — determines.
  no-naked-mutex           std::mutex / lock_guard / unique_lock /
                           scoped_lock / condition_variable, or
                           .lock()/.unlock() on a mutex-named
                           receiver, anywhere but
                           src/common/thread_annotations.hpp: only
                           the annotated Mutex/MutexLock/CondVar
                           wrappers are visible to clang's
                           thread-safety analysis.
  no-unbounded-trace-read  whole-stream slurps (rdbuf,
                           istreambuf_iterator) and random-access
                           repositioning (seekg/tellg/ios::ate,
                           fseek/ftell) in trace-handling files
                           (name contains "trace"): the trace
                           frontend must stream through a bounded
                           buffer so a huge or adversarial file can
                           cost at most O(buffer) memory, and must
                           stay seek-free so the same code path
                           serves pipes (gzip/xz popen filters).

Suppress a finding with a justified comment on the same or previous
line:  // impsim-lint: allow(rule-name) <why>

Exit status: 0 clean, 1 violations, 2 usage/self-test failure.
"""

import argparse
import pathlib
import re
import sys

SCAN_DIRS = ("src", "examples", "bench")
SUFFIXES = (".cpp", ".hpp")

ALLOW_RE = re.compile(r"impsim-lint:\s*allow\(([a-z-]+)\)")

# How far (in lines) after a FlatHashMap range-for an emission call
# still counts as "directly feeding" it.
EMISSION_WINDOW = 10

UNORDERED_RE = re.compile(
    r"std::unordered_(?:map|set|multimap|multiset)\b"
    r"|#\s*include\s*<unordered_(?:map|set)>")

ENTROPY_RES = [
    (re.compile(r"std::random_device\b"), "std::random_device"),
    (re.compile(r"std::mt19937(?:_64)?\b"), "std::mt19937"),
    (re.compile(r"\brand\s*\("), "rand()"),
    (re.compile(r"\bsrand\s*\("), "srand()"),
    (re.compile(r"\btime\s*\("), "time()"),
    (re.compile(r"\bclock\s*\("), "clock()"),
    (re.compile(r"\bsystem_clock\b"), "system_clock"),
]

TRACE_READ_RES = [
    (re.compile(r"\brdbuf\s*\("), "whole-stream rdbuf() slurp"),
    (re.compile(r"\bistreambuf_iterator\b"),
     "istreambuf_iterator whole-stream read"),
    (re.compile(r"\b(?:seekg|tellg|seekp|tellp)\s*\("),
     "stream repositioning (seekg/tellg)"),
    (re.compile(r"\bios(?:_base)?::ate\b"), "ios::ate open mode"),
    (re.compile(r"\bf(?:seek|tell)o?\s*\("), "fseek()/ftell()"),
]

MUTEX_RES = [
    (re.compile(r"std::(?:recursive_|timed_|shared_)?mutex\b"),
     "std::mutex family"),
    (re.compile(r"std::condition_variable(?:_any)?\b"),
     "std::condition_variable"),
    (re.compile(r"std::(?:lock_guard|unique_lock|scoped_lock)\b"),
     "std::lock_guard/unique_lock/scoped_lock"),
    (re.compile(r"\b\w*[mM]utex\w*\s*\.\s*(?:un)?lock\s*\("),
     "manual mutex .lock()/.unlock()"),
]

FLAT_DECL_RE = re.compile(r"FlatHashMap<[^;{}]*>\s*(\w+)\s*[;={(]")
RANGE_FOR_RE = re.compile(
    r"for\s*\([^;()]*:\s*(?:\w+(?:\.|->))?(\w+)\s*\)")
EMISSION_RE = re.compile(
    r"<<\s*[\"']|\b(?:printf|fprintf)\s*\(|appendCsv")
SORT_RE = re.compile(r"\bsort\w*\s*\(|\bsorted|std::map\b")


def strip_code(text):
    """Blanks comments and string/char-literal *contents* (the quote
    delimiters stay), preserving line structure so match positions
    map back to real line numbers."""
    out = []
    i, n = 0, len(text)
    state = "code"  # code | line | block | str | chr
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if state == "code":
            if c == "/" and nxt == "/":
                state = "line"
                out.append("  ")
                i += 2
                continue
            if c == "/" and nxt == "*":
                state = "block"
                out.append("  ")
                i += 2
                continue
            if c == '"':
                state = "str"
            elif c == "'":
                state = "chr"
            out.append(c)
        elif state == "line":
            if c == "\n":
                state = "code"
                out.append(c)
            else:
                out.append(" ")
        elif state == "block":
            if c == "*" and nxt == "/":
                state = "code"
                out.append("  ")
                i += 2
                continue
            out.append(c if c == "\n" else " ")
        else:  # str / chr
            quote = '"' if state == "str" else "'"
            if c == "\\":
                out.append("  ")
                i += 2
                continue
            if c == quote:
                state = "code"
                out.append(c)
            else:
                out.append(c if c == "\n" else " ")
        i += 1
    return "".join(out)


class SourceFile:
    def __init__(self, path, root):
        self.path = path
        self.rel = path.relative_to(root).as_posix()
        text = path.read_text(encoding="utf-8", errors="replace")
        self.raw_lines = text.splitlines()
        self.lines = strip_code(text).splitlines()

    def allowed(self, rule, lineno):
        """True when line `lineno` (1-based) or the one above carries
        an impsim-lint: allow(<rule>) directive."""
        for ln in (lineno, lineno - 1):
            if 1 <= ln <= len(self.raw_lines):
                m = ALLOW_RE.search(self.raw_lines[ln - 1])
                if m and m.group(1) == rule:
                    return True
        return False


class Violation:
    def __init__(self, rel, lineno, rule, message):
        self.rel = rel
        self.lineno = lineno
        self.rule = rule
        self.message = message

    def __str__(self):
        return f"{self.rel}:{self.lineno}: [{self.rule}] {self.message}"


def check_simple(sf, rule, patterns, out):
    for lineno, line in enumerate(sf.lines, 1):
        for regex, what in patterns:
            if regex.search(line) and not sf.allowed(rule, lineno):
                out.append(Violation(sf.rel, lineno, rule,
                                     f"{what} is banned here"))


def flat_names_by_stem(files):
    """FlatHashMap variable names declared per path stem, so foo.cpp
    sees the members foo.hpp declares — and nothing from unrelated
    files whose members merely share a name."""
    names = {}
    for sf in files:
        found = set()
        for line in sf.lines:
            for m in FLAT_DECL_RE.finditer(line):
                found.add(m.group(1))
        if found:
            names.setdefault(sf.path.stem, set()).update(found)
    return names


def check_flat_emission(sf, stem_names, out):
    rule = "no-unsorted-flat-emission"
    names = stem_names.get(sf.path.stem, set())
    if not names:
        return
    for lineno, line in enumerate(sf.lines, 1):
        m = RANGE_FOR_RE.search(line)
        if not m or m.group(1) not in names:
            continue
        if sf.allowed(rule, lineno):
            continue
        window = sf.lines[lineno - 1:lineno - 1 + EMISSION_WINDOW]
        hit = None
        for off, wline in enumerate(window):
            if SORT_RE.search(wline):
                hit = None
                break
            if EMISSION_RE.search(wline):
                hit = off
                break
        if hit is not None:
            out.append(Violation(
                sf.rel, lineno, rule,
                f"range-for over FlatHashMap '{m.group(1)}' feeds "
                f"emission on line {lineno + hit} without an ordering "
                "sort; FlatHashMap iterates in table order"))


def lint_paths(root, paths):
    files = [SourceFile(p, root) for p in sorted(paths)]
    stem_names = flat_names_by_stem(files)
    violations = []
    for sf in files:
        if sf.path.name != "flat_map.hpp":
            check_simple(sf, "no-unordered-container",
                         [(UNORDERED_RE, "std::unordered_*")], violations)
        if sf.path.name != "rng.hpp":
            check_simple(sf, "no-wallclock-entropy", ENTROPY_RES,
                         violations)
        if sf.path.name != "thread_annotations.hpp":
            check_simple(sf, "no-naked-mutex", MUTEX_RES, violations)
        if "trace" in sf.path.name:
            check_simple(sf, "no-unbounded-trace-read", TRACE_READ_RES,
                         violations)
        check_flat_emission(sf, stem_names, violations)
    return files, violations


def tree_paths(root):
    for d in SCAN_DIRS:
        base = root / d
        if not base.is_dir():
            continue
        for p in sorted(base.rglob("*")):
            if p.suffix in SUFFIXES and p.is_file():
                yield p


def self_test(root):
    """Every tests/lint_fixtures/<rule>.cpp must trigger exactly its
    rule; clean.cpp must trigger nothing. Keeps the rules from
    silently rotting."""
    fixtures = root / "tests" / "lint_fixtures"
    expected = {
        "unordered_container.cpp": "no-unordered-container",
        "wallclock_entropy.cpp": "no-wallclock-entropy",
        "unsorted_flat_emission.cpp": "no-unsorted-flat-emission",
        "naked_mutex.cpp": "no-naked-mutex",
        "unbounded_trace_read.cpp": "no-unbounded-trace-read",
        "clean.cpp": None,
    }
    missing = [n for n in expected if not (fixtures / n).is_file()]
    if missing:
        print(f"impsim_lint self-test: fixtures missing: {missing}",
              file=sys.stderr)
        return 2
    _, violations = lint_paths(root, [fixtures / n for n in expected])
    by_file = {}
    for v in violations:
        by_file.setdefault(pathlib.PurePosixPath(v.rel).name,
                           set()).add(v.rule)
    failures = []
    for name, rule in expected.items():
        got = by_file.get(name, set())
        want = {rule} if rule else set()
        if got != want:
            failures.append(f"{name}: expected {sorted(want) or 'clean'},"
                            f" got {sorted(got) or 'clean'}")
    if failures:
        print("impsim_lint self-test FAILED:", file=sys.stderr)
        for f in failures:
            print(f"  {f}", file=sys.stderr)
        return 2
    print(f"impsim_lint self-test: OK ({len(expected)} fixtures)")
    return 0


def main(argv):
    parser = argparse.ArgumentParser(
        description="impsim domain lint (see docs/static_analysis.md)")
    parser.add_argument("--root", type=pathlib.Path,
                        default=pathlib.Path(__file__).resolve().parents[1],
                        help="repository root (default: script's repo)")
    parser.add_argument("--self-test", action="store_true",
                        help="check the rules against tests/lint_fixtures")
    args = parser.parse_args(argv)
    root = args.root.resolve()

    if args.self_test:
        return self_test(root)

    files, violations = lint_paths(root, tree_paths(root))
    for v in violations:
        print(v)
    if violations:
        print(f"impsim_lint: {len(violations)} violation(s) in "
              f"{len(files)} files", file=sys.stderr)
        return 1
    print(f"impsim_lint: OK ({len(files)} files)")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
