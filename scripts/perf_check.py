#!/usr/bin/env python3
"""Compare a fresh perf_harness JSON against the committed baseline.

Usage:
    perf_check.py --current perf_smoke.json [--baseline BENCH_6.json]
                  [--grid smoke] [--max-regression 0.25]

With no --baseline, picks the highest-numbered BENCH_<n>.json in the
repo root (the perf trajectory described in docs/perf.md).

The check warns by default: CI runners are noisy enough that a hard
gate on shared infrastructure would flake. Set IMPSIM_PERF_STRICT=1
(or pass --strict) to turn a regression beyond --max-regression into
a non-zero exit.
"""

import argparse
import glob
import json
import os
import re
import sys


def find_baseline(root):
    best, best_n = None, -1
    for path in glob.glob(os.path.join(root, "BENCH_*.json")):
        m = re.fullmatch(r"BENCH_(\d+)\.json", os.path.basename(path))
        if m and int(m.group(1)) > best_n:
            best, best_n = path, int(m.group(1))
    return best


def grids_by_name(doc):
    return {g["name"]: g for g in doc.get("grids", [])}


def load_grids(path, label):
    """Reads a perf JSON, or explains why it can't. BENCH_6.json is
    the trajectory's only datapoint so far, so a missing, empty, or
    truncated file is an expected state, not a stack trace: return
    None and let the caller decide whether that skips or fails."""
    try:
        with open(path) as f:
            text = f.read()
    except OSError as e:
        print(f"perf_check: cannot read {label} {path}: {e.strerror}")
        return None
    if not text.strip():
        print(f"perf_check: {label} {path} is empty")
        return None
    try:
        doc = json.loads(text)
    except json.JSONDecodeError as e:
        print(f"perf_check: {label} {path} is not valid JSON "
              f"(line {e.lineno}: {e.msg})")
        return None
    if not isinstance(doc, dict) or "grids" not in doc:
        print(f"perf_check: {label} {path} has no 'grids' array; "
              "was it written by perf_harness --json?")
        return None
    return grids_by_name(doc)


def main():
    ap = argparse.ArgumentParser()
    ap.add_argument("--current", required=True)
    ap.add_argument("--baseline")
    ap.add_argument("--grid", default="smoke")
    ap.add_argument("--max-regression", type=float, default=0.25,
                    help="fractional sims/sec drop tolerated (0.25 = 25%%)")
    ap.add_argument("--strict", action="store_true")
    args = ap.parse_args()
    strict = args.strict or os.environ.get("IMPSIM_PERF_STRICT") == "1"

    baseline_path = args.baseline or find_baseline(
        os.path.dirname(os.path.abspath(__file__)) + "/..")
    if baseline_path is None:
        print("perf_check: no committed BENCH_*.json baseline; skipping")
        return 0

    # An unusable baseline only skips the comparison (same as having
    # no baseline at all); an unusable *current* file means the bench
    # that was supposed to produce it went wrong, which the strict
    # mode must surface.
    base = load_grids(baseline_path, "baseline")
    if base is None:
        print("perf_check: baseline unusable; skipping comparison")
        return 0
    cur = load_grids(args.current, "current")
    if cur is None:
        if strict:
            print("perf_check: FAIL (IMPSIM_PERF_STRICT)")
            return 1
        print("perf_check: current result unusable (warn-only; set "
              "IMPSIM_PERF_STRICT=1 to enforce)")
        return 0

    failed = False
    for name in args.grid.split(","):
        if name not in base:
            print(f"perf_check: grid '{name}' absent from "
                  f"{baseline_path}; skipping")
            continue
        if name not in cur:
            print(f"perf_check: grid '{name}' absent from "
                  f"{args.current}")
            failed = True
            continue
        b, c = base[name]["sims_per_sec"], cur[name]["sims_per_sec"]
        ratio = c / b if b > 0 else float("inf")
        line = (f"perf_check: {name}: {c:.2f} sims/s vs baseline "
                f"{b:.2f} ({ratio:.2f}x, floor "
                f"{1.0 - args.max_regression:.2f}x)")
        if ratio < 1.0 - args.max_regression:
            print(line + "  REGRESSION")
            failed = True
        else:
            print(line + "  ok")
        # Throughput aside, the same simulator version must simulate
        # the same cycles; drift here usually means the baseline needs
        # re-recording after an intentional behavior change.
        bc, cc = base[name].get("sim_cycles"), cur[name].get("sim_cycles")
        if bc is not None and cc is not None and bc != cc:
            print(f"perf_check: note: {name} simulated cycles differ "
                  f"({bc} -> {cc}); baseline predates a behavior "
                  f"change (informational)")

    if failed:
        if strict:
            print("perf_check: FAIL (IMPSIM_PERF_STRICT)")
            return 1
        print("perf_check: regression detected (warn-only; set "
              "IMPSIM_PERF_STRICT=1 to enforce)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
