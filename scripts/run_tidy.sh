#!/usr/bin/env bash
# Batch clang-tidy over every TU in a build's compile_commands.json
# (the .clang-tidy profile at the repo root supplies the checks).
#
# Usage: scripts/run_tidy.sh [build-dir] [extra clang-tidy args...]
#   build-dir defaults to build-lint; it must have been configured
#   with -DCMAKE_EXPORT_COMPILE_COMMANDS=ON.
#
# CI runs this with --warnings-as-errors=* appended so any finding
# fails the lint job; locally the default is advisory output.
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR="${1:-build-lint}"
shift || true

if [ ! -f "$BUILD_DIR/compile_commands.json" ]; then
    echo "run_tidy: $BUILD_DIR/compile_commands.json not found;" \
         "configure with -DCMAKE_EXPORT_COMPILE_COMMANDS=ON" >&2
    exit 2
fi

TIDY=""
for candidate in clang-tidy clang-tidy-18 clang-tidy-17 clang-tidy-16 \
                 clang-tidy-15 clang-tidy-14; do
    if command -v "$candidate" > /dev/null 2>&1; then
        TIDY="$candidate"
        break
    fi
done
if [ -z "$TIDY" ]; then
    echo "run_tidy: no clang-tidy on PATH; skipping (the lint CI job" \
         "installs one)" >&2
    exit 0
fi

# Only TUs the database knows — bench/ drops out of builds without
# Google Benchmark, and tidying a file without flags misparses it.
mapfile -t FILES < <(python3 - "$BUILD_DIR" <<'EOF'
import json, sys
entries = json.load(open(sys.argv[1] + "/compile_commands.json"))
seen = []
for e in entries:
    f = e["file"]
    if f not in seen:
        seen.append(f)
print("\n".join(sorted(seen)))
EOF
)

echo "run_tidy: $TIDY over ${#FILES[@]} TUs from $BUILD_DIR"
printf '%s\n' "${FILES[@]}" |
    xargs -P "$(nproc)" -n 4 "$TIDY" -p "$BUILD_DIR" --quiet "$@"
echo "run_tidy: clean"
