#!/usr/bin/env bash
# clang-format conformance for *changed* C++ files only.
#
# The repo predates .clang-format, so a whole-tree check would demand
# a mass reformat — churn that buries real diffs and breaks blame.
# Instead this diffs clang-format's opinion of every .cpp/.hpp that
# changed relative to a base revision (merge-base with origin/main,
# falling back to HEAD~1), plus uncommitted edits.
#
# Like scripts/perf_check.py, findings warn by default so an
# opinionated formatter version can't wedge CI; export
# IMPSIM_FORMAT_STRICT=1 to make them fail instead.
#
# Usage: scripts/format_check.sh [base-ref]
set -euo pipefail

cd "$(dirname "$0")/.."

FMT=""
for candidate in clang-format clang-format-18 clang-format-17 \
                 clang-format-16 clang-format-15 clang-format-14; do
    if command -v "$candidate" > /dev/null 2>&1; then
        FMT="$candidate"
        break
    fi
done
if [ -z "$FMT" ]; then
    echo "format_check: no clang-format on PATH; skipping (the lint" \
         "CI job installs one)" >&2
    exit 0
fi

BASE="${1:-}"
if [ -z "$BASE" ]; then
    BASE=$(git merge-base origin/main HEAD 2> /dev/null ||
           git rev-parse HEAD~1 2> /dev/null || echo "")
fi
if [ -z "$BASE" ]; then
    echo "format_check: no base revision to diff against; skipping" >&2
    exit 0
fi

# Committed changes since base, plus anything dirty in the tree.
mapfile -t FILES < <({
    git diff --name-only --diff-filter=ACMR "$BASE" -- \
        '*.cpp' '*.hpp'
    git diff --name-only --diff-filter=ACMR -- '*.cpp' '*.hpp'
} | sort -u)

if [ "${#FILES[@]}" -eq 0 ]; then
    echo "format_check: no changed C++ files since ${BASE:0:12}"
    exit 0
fi

BAD=0
for f in "${FILES[@]}"; do
    [ -f "$f" ] || continue
    if ! "$FMT" --style=file "$f" | diff -q "$f" - > /dev/null; then
        echo "format_check: $f differs from $FMT --style=file"
        BAD=$((BAD + 1))
    fi
done

if [ "$BAD" -gt 0 ]; then
    echo "format_check: $BAD of ${#FILES[@]} changed file(s) need" \
         "formatting (run: $FMT -i <file>)"
    if [ "${IMPSIM_FORMAT_STRICT:-0}" = "1" ]; then
        exit 1
    fi
    echo "format_check: warning only (IMPSIM_FORMAT_STRICT=1 enforces)"
    exit 0
fi
echo "format_check: ${#FILES[@]} changed file(s) clean"
